(** rho-neighborhoods and isomorphism types (Section 3).

    N_rho(c) is the substructure induced on the sphere S_rho(c), with the
    elements of the tuple c as distinguished constants.  Two tuples are
    ~rho-equivalent iff their neighborhoods are isomorphic; ntp(rho, G)
    counts the equivalence classes.  The local watermarking scheme picks one
    {e canonical parameter} per class (Theorem 3). *)

type nbh = {
  sub : Structure.t;  (** the induced substructure, renamed to 0..k-1 *)
  center : int list;  (** images of the tuple's elements in [sub] *)
  original : int array;  (** renaming: [original.(new_id) = old element] *)
}

val of_tuple : Structure.t -> Gaifman.t -> rho:int -> Tuple.t -> nbh
(** Materializes N_rho(c). *)

val equivalent :
  Structure.t -> Gaifman.t -> rho:int -> Tuple.t -> Tuple.t -> bool
(** The ~rho relation: isomorphism of the two neighborhoods. *)

type index = {
  rho : int;
  arity : int;  (** arity of the indexed tuples (0 when none) *)
  types : int Tuple.Map.t;  (** type id of every indexed tuple *)
  representatives : Tuple.t array;  (** representatives.(ty) has type ty *)
}
(** A computed type index over a set of tuples: type ids are dense in
    [0 .. ntp-1] and [representatives] realizes the paper's canonical
    parameter set S. *)

val index :
  ?sphere_cache:bool ->
  ?jobs:int ->
  ?width_bound:int ->
  Structure.t ->
  rho:int ->
  Tuple.t list ->
  index
(** Types every listed tuple: pre-buckets by cheap invariants (sphere
    size, tuple count, degree multiset, center pattern) and by
    {!Iso.certificate}, then verifies with exact isomorphism inside each
    bucket.  Sphere extraction and in-bucket classification run on the
    {!Wm_par.Pool} when [jobs] (default {!Wm_par.Pool.jobs}) exceeds 1;
    the result — type ids included — is bit-identical to the sequential
    [jobs:1] fold for every job count.

    The fast path (DESIGN.md 5.9) memoizes element spheres per call and
    dedupes the induced-substructure member scan across tuples sharing a
    sphere; [sphere_cache:false] disables both memo tables (same result,
    per-tuple recomputation — exists so tests can assert the identity).

    [width_bound] dispatches spheres through the bounded-width
    decomposition-code path (DESIGN.md 5.14): spheres whose min-degree
    tree decomposition stays within the bound are typed by canonical
    decomposition codes — equal codes imply isomorphic pointed spheres,
    so only one tuple per code group runs the refinement prep and the
    in-bucket isomorphism scan — while wider spheres fall back,
    per sphere, to the generic path above.  [0] forces the generic path;
    omitting it defers to {!set_width_bound} and then
    [WMARK_WIDTH_BOUND].  The result is bit-identical to the generic
    path for every bound and job count.
    @raise Invalid_argument on a negative [width_bound]. *)

val index_bounded :
  ?sphere_cache:bool ->
  ?jobs:int ->
  width:int ->
  Structure.t ->
  rho:int ->
  Tuple.t list ->
  index
(** [index] with the bounded-width path forced on: [index_bounded ~width]
    is [index ~width_bound:width].  @raise Invalid_argument when
    [width < 1] (use [index] to run the generic path). *)

val set_width_bound : int option -> unit
(** Process-wide width bound for {!index}/{!index_universe}/{!reindex}
    calls that don't pass [?width_bound]: [Some k] (k >= 1) enables the
    bounded path, [Some 0] forces the generic path, [None] falls back to
    the [WMARK_WIDTH_BOUND] environment variable (unset, empty or [0]:
    generic).  @raise Invalid_argument on a negative bound. *)

val width_bound : unit -> int option
(** The bound that would apply to a call without [?width_bound]. *)

val max_sphere_width : ?jobs:int -> Structure.t -> rho:int -> int
(** The largest min-degree heuristic width over all elements' rho-sphere
    substructures — the exact graphs the bounded path probes, so any
    [width_bound >= max_sphere_width] makes every arity-1 sphere take
    the decomposition-code path ([wmark info] surfaces it). *)

val index_universe :
  ?sphere_cache:bool ->
  ?jobs:int ->
  ?width_bound:int ->
  Structure.t ->
  rho:int ->
  arity:int ->
  index
(** Types all of U^arity, enumerated in a streaming fashion (no
    [n^arity] cons-list is ever materialized). *)

val affected_elements :
  old_gf:Gaifman.t -> gf:Gaifman.t -> rho:int -> dirty:int list -> int list
(** Elements within distance [rho] of a dirty element in the old {e or} new
    Gaifman graph, sorted.  A tuple none of whose elements is affected has
    the same rho-sphere — and hence neighborhood type — before and after
    the edits (DESIGN.md 5.7). *)

val reindex :
  ?jobs:int ->
  ?threshold:float ->
  ?width_bound:int ->
  old:Structure.t ->
  Structure.t ->
  prev:index ->
  dirty:int list ->
  index
(** [reindex ~old g ~prev ~dirty] is [index_universe g ~rho:prev.rho
    ~arity:prev.arity] — bit-identical, type numbering and representatives
    included — computed incrementally from [prev], the universe index of the
    pre-edit structure [old], and the dirty set its edits reported (see
    {!Structure.apply_edits}).  Only tuples touching {!affected_elements}
    are re-materialized and re-bucketed; each one is matched against an
    {e anchor} (an untouched member) of every surviving old class before
    opening a fresh class, and a final sequential pass renumbers classes by
    first occurrence.  Falls back to a full rebuild when the affected
    tuples exceed [threshold] (default [0.5]) of the universe.  Only
    meaningful when [prev] indexes all of [old]'s U^arity. *)

val ntp : index -> int
(** Number of types = |S|. *)

val type_of : index -> Tuple.t -> int
(** @raise Not_found if the tuple was not indexed. *)

val all_tuples : Structure.t -> arity:int -> Tuple.t list
(** U^arity in lexicographic order (helper shared with the evaluator). *)
