type nbh = {
  sub : Structure.t;
  center : int list;
  original : int array;
}

(* Observability (DESIGN.md 5.8).  The counters decompose the cost claims
   of E20/E21: how many spheres were extracted by BFS, how many exact
   isomorphism tests actually ran, and how many the cheap-invariant
   pre-bucketing avoided (the comparisons a bucket-less scan over all
   representatives would have performed on top of the in-bucket ones). *)
module Obs = Wm_obs.Obs

let c_spheres = Obs.counter "nbh.spheres"
let c_tuples_typed = Obs.counter "nbh.tuples_typed"
let c_buckets = Obs.counter "nbh.buckets"
let c_iso_checks = Obs.counter "nbh.iso_checks"
let c_iso_avoided = Obs.counter "nbh.iso_avoided"
let c_affected_elements = Obs.counter "nbh.reindex.affected_elements"
let c_affected_tuples = Obs.counter "nbh.reindex.affected_tuples"
let c_anchors = Obs.counter "nbh.reindex.anchors"
let c_fallbacks = Obs.counter "nbh.reindex.threshold_fallbacks"
let t_index = Obs.timer "nbh.index"
let t_reindex = Obs.timer "nbh.reindex"
let t_spheres = Obs.timer "nbh.index.spheres"
let t_classify = Obs.timer "nbh.index.classify"
let t_renumber = Obs.timer "nbh.index.renumber"

let iso_check a b =
  Obs.incr c_iso_checks;
  Iso.isomorphic a.sub a.center b.sub b.center

let of_tuple g gf ~rho c =
  Obs.incr c_spheres;
  let sphere = Gaifman.sphere_tuple gf ~rho c in
  (* Put the tuple's own elements first so their new ids are stable. *)
  let sub, original = Structure.induced g (Array.to_list c @ sphere) in
  let new_id = Hashtbl.create 16 in
  Array.iteri (fun nw old -> Hashtbl.replace new_id old nw) original;
  let center = List.map (Hashtbl.find new_id) (Array.to_list c) in
  { sub; center; original }

let equivalent g gf ~rho a b =
  let na = of_tuple g gf ~rho a and nb = of_tuple g gf ~rho b in
  Iso.isomorphic na.sub na.center nb.sub nb.center

type index = {
  rho : int;
  arity : int;
  types : int Tuple.Map.t;
  representatives : Tuple.t array;
}

let all_tuples g ~arity =
  let n = Structure.size g in
  let rec go k acc =
    if k = 0 then acc
    else
      go (k - 1)
        (List.concat_map
           (fun rest -> List.init n (fun x -> x :: rest))
           acc)
  in
  List.map Tuple.of_list (go arity [ [] ])

(* Cheap isomorphism invariants of a neighborhood, used to pre-bucket
   before the refinement certificate and the exact in-bucket search:
   universe size, tuple count, the degree multiset of the sphere's
   Gaifman graph, and the equality pattern of the center (all preserved
   by any isomorphism that maps i-th distinguished to i-th).  Buckets
   get finer, so the quadratic all-pairs search inside each bucket runs
   on far fewer candidates. *)
let cheap_invariants nb =
  let gf = Gaifman.of_structure nb.sub in
  let degrees =
    List.sort compare
      (List.map (Gaifman.degree gf) (Structure.universe nb.sub))
  in
  Hashtbl.hash
    (Structure.size nb.sub, Structure.tuples_count nb.sub, degrees, nb.center)

let distinct_tuples tuples =
  (* first-occurrence order, which fixes the type-id numbering *)
  let seen = ref Tuple.Set.empty in
  List.filter
    (fun c ->
      if Tuple.Set.mem c !seen then false
      else begin
        seen := Tuple.Set.add c !seen;
        true
      end)
    tuples

let index ?jobs g ~rho tuples =
  Obs.span t_index @@ fun () ->
  let gf = Gaifman.of_structure g in
  let tups = Array.of_list (distinct_tuples tuples) in
  let n = Array.length tups in
  let arity = if n > 0 then Array.length tups.(0) else 0 in
  Obs.add c_tuples_typed n;
  (* Phase 1 (parallel): materialize every neighborhood and its
     invariants.  Each tuple is independent work over the shared
     immutable structure. *)
  let keyed =
    Obs.span t_spheres @@ fun () ->
    Wm_par.Pool.parallel_map ?jobs
      (fun c ->
        let nb = of_tuple g gf ~rho c in
        (nb, cheap_invariants nb, Iso.certificate nb.sub nb.center))
      tups
  in
  (* Phase 2 (sequential, cheap): group slots into buckets keyed by
     (cheap invariants, certificate), keeping first-seen order both of
     buckets and within each bucket. *)
  let btbl : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let border = ref [] in
  Array.iteri
    (fun i (_, ck, cert) ->
      match Hashtbl.find_opt btbl (ck, cert) with
      | Some slots -> slots := i :: !slots
      | None ->
          Hashtbl.add btbl (ck, cert) (ref [ i ]);
          border := (ck, cert) :: !border)
    keyed;
  let buckets =
    Array.of_list
      (List.rev_map
         (fun k -> Array.of_list (List.rev !(Hashtbl.find btbl k)))
         !border)
  in
  Obs.add c_buckets (Array.length buckets);
  (* Phase 3 (parallel): exact classification inside each bucket.
     Buckets are independent; within one bucket the search is the
     sequential scan against the bucket's representatives.  For each
     slot we record its leader: the slot of the first bucket member it
     is isomorphic to.  Representatives of one bucket are pairwise
     non-isomorphic, so a member matches at most one of them and the
     leader is well defined regardless of search order. *)
  let leader = Array.make n (-1) in
  let classified =
    Obs.span t_classify @@ fun () ->
    Wm_par.Pool.parallel_map ?jobs
      (fun slots ->
        let reps = ref [] in
        let leaders =
          Array.map
            (fun i ->
              let nb, _, _ = keyed.(i) in
              match List.find_opt (fun (_, rep) -> iso_check nb rep) !reps with
              | Some (l, _) -> l
              | None ->
                  reps := (i, nb) :: !reps;
                  i)
            slots
        in
        (leaders, List.length !reps))
      buckets
  in
  Array.iteri
    (fun b slots ->
      Array.iteri (fun k i -> leader.(i) <- (fst classified.(b)).(k)) slots)
    buckets;
  (if Obs.enabled () then
     (* What pre-bucketing saved: a bucket-less scan compares each tuple
        against every representative outside its own bucket as well. *)
     let total_reps =
       Array.fold_left (fun acc (_, r) -> acc + r) 0 classified
     in
     Array.iteri
       (fun b slots ->
         Obs.add c_iso_avoided
           (Array.length slots * (total_reps - snd classified.(b))))
       buckets);
  (* Phase 4 (sequential): number the classes by first occurrence, which
     reproduces the type ids of the plain sequential fold exactly. *)
  Obs.span t_renumber @@ fun () ->
  let ty_of_leader = Hashtbl.create 64 in
  let reps = ref [] in
  let next_ty = ref 0 in
  let types = ref Tuple.Map.empty in
  Array.iteri
    (fun i c ->
      let l = leader.(i) in
      let ty =
        match Hashtbl.find_opt ty_of_leader l with
        | Some ty -> ty
        | None ->
            let ty = !next_ty in
            incr next_ty;
            Hashtbl.add ty_of_leader l ty;
            reps := tups.(l) :: !reps;
            ty
      in
      types := Tuple.Map.add c ty !types)
    tups;
  { rho; arity; types = !types; representatives = Array.of_list (List.rev !reps) }

let index_universe ?jobs g ~rho ~arity =
  { (index ?jobs g ~rho (all_tuples g ~arity)) with arity }

let affected_elements ~old_gf ~gf ~rho ~dirty =
  (* Both graphs: an inserted edge shortens distances only in the new graph,
     a deleted one only in the old; a tuple's sphere can change iff one of
     its elements is within rho of a dirty element in either. *)
  List.sort_uniq compare
    (Gaifman.reach old_gf ~sources:dirty ~bound:rho
    @ Gaifman.reach gf ~sources:dirty ~bound:rho)

let reindex ?jobs ?(threshold = 0.5) ~old g ~prev ~dirty =
  Obs.span t_reindex @@ fun () ->
  let rho = prev.rho and arity = prev.arity in
  let old_gf = Gaifman.of_structure old in
  let gf = Gaifman.refresh g ~prev:old_gf ~dirty in
  let n = Structure.size g in
  let affected = affected_elements ~old_gf ~gf ~rho ~dirty in
  Obs.add c_affected_elements (List.length affected);
  let in_a = Array.make (max n (Structure.size old)) false in
  List.iter (fun x -> in_a.(x) <- true) affected;
  let a_new = List.length (List.filter (fun x -> x < n) affected) in
  let total = float_of_int n ** float_of_int arity in
  let affected_tuples = total -. (float_of_int (n - a_new) ** float_of_int arity) in
  if total = 0. || affected_tuples > threshold *. total then begin
    Obs.incr c_fallbacks;
    index_universe ?jobs g ~rho ~arity
  end
  else begin
    let touches c = Array.exists (fun x -> in_a.(x)) c in
    (* Anchors: for every old type that still has a member untouched by the
       affected region, any such member — its neighborhood is unchanged, so
       it stands in for the whole class during reclassification.  Old
       classes cannot merge (their untouched members stay non-isomorphic),
       so matching an anchor is unambiguous. *)
    let ntp_old = Array.length prev.representatives in
    let anchor = Array.make ntp_old None in
    Tuple.Map.iter
      (fun c ty ->
        if
          anchor.(ty) = None
          && not (Array.exists (fun x -> x >= n || in_a.(x)) c)
        then anchor.(ty) <- Some c)
      prev.types;
    let anchors =
      let acc = ref [] in
      for ty = ntp_old - 1 downto 0 do
        match anchor.(ty) with
        | Some c -> acc := (ty, c) :: !acc
        | None -> ()
      done;
      Array.of_list !acc
    in
    let anchor_keyed =
      Wm_par.Pool.parallel_map ?jobs
        (fun (ty, c) ->
          let nb = of_tuple g gf ~rho c in
          (ty, nb, cheap_invariants nb, Iso.certificate nb.sub nb.center))
        anchors
    in
    let atbl : (int * int, (int * nbh) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    Array.iter
      (fun (ty, nb, ck, cert) ->
        match Hashtbl.find_opt atbl (ck, cert) with
        | Some l -> l := (ty, nb) :: !l
        | None -> Hashtbl.add atbl (ck, cert) (ref [ (ty, nb) ]))
      anchor_keyed;
    Obs.add c_anchors (Array.length anchors);
    (* Affected tuples, in enumeration order so numbering below matches the
       from-scratch index; everything else keeps its old class. *)
    let at = Array.of_list (List.filter touches (all_tuples g ~arity)) in
    Obs.add c_affected_tuples (Array.length at);
    let keyed =
      Wm_par.Pool.parallel_map ?jobs
        (fun c ->
          let nb = of_tuple g gf ~rho c in
          (nb, cheap_invariants nb, Iso.certificate nb.sub nb.center))
        at
    in
    let btbl : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let border = ref [] in
    Array.iteri
      (fun i (_, ck, cert) ->
        match Hashtbl.find_opt btbl (ck, cert) with
        | Some slots -> slots := i :: !slots
        | None ->
            Hashtbl.add btbl (ck, cert) (ref [ i ]);
            border := (ck, cert) :: !border)
      keyed;
    let buckets =
      Array.of_list
        (List.rev_map
           (fun k -> (k, Array.of_list (List.rev !(Hashtbl.find btbl k))))
           !border)
    in
    (* Class keys: [0 .. ntp_old-1] are surviving old classes, [ntp_old + i]
       is a fresh class led by affected slot [i].  A fresh leader is not
       isomorphic to any anchor of its bucket, hence to no surviving old
       class; so every tuple matches at most one candidate and the result
       does not depend on how buckets are scheduled. *)
    let classified =
      Wm_par.Pool.parallel_map ?jobs
        (fun (key, slots) ->
          let anchors_here =
            match Hashtbl.find_opt atbl key with
            | Some l -> List.rev !l
            | None -> []
          in
          let reps = ref [] in
          Array.map
            (fun i ->
              let nb, _, _ = keyed.(i) in
              let iso (_, r) = iso_check nb r in
              match List.find_opt iso anchors_here with
              | Some (ty, _) -> ty
              | None -> (
                  match List.find_opt iso !reps with
                  | Some (cls, _) -> cls
                  | None ->
                      let cls = ntp_old + i in
                      reps := (cls, nb) :: !reps;
                      cls))
            slots)
        buckets
    in
    let cls = Array.make (Array.length at) (-1) in
    Array.iteri
      (fun b (_, slots) ->
        Array.iteri (fun k i -> cls.(i) <- classified.(b).(k)) slots)
      buckets;
    let cls_of_tuple = Tuple.Hashtbl.create (Array.length at) in
    Array.iteri (fun i c -> Tuple.Hashtbl.replace cls_of_tuple c cls.(i)) at;
    (* Renumber every class by first occurrence over the full enumeration —
       the same sequential pass as the from-scratch phase 4, so type ids and
       representatives come out bit-identical. *)
    let ty_of_cls = Hashtbl.create 64 in
    let reps = ref [] in
    let next_ty = ref 0 in
    let types = ref Tuple.Map.empty in
    List.iter
      (fun c ->
        let k =
          match Tuple.Hashtbl.find_opt cls_of_tuple c with
          | Some k -> k
          | None -> Tuple.Map.find c prev.types
        in
        let ty =
          match Hashtbl.find_opt ty_of_cls k with
          | Some ty -> ty
          | None ->
              let ty = !next_ty in
              incr next_ty;
              Hashtbl.add ty_of_cls k ty;
              reps := c :: !reps;
              ty
        in
        types := Tuple.Map.add c ty !types)
      (all_tuples g ~arity);
    { rho; arity; types = !types; representatives = Array.of_list (List.rev !reps) }
  end

let ntp ix = Array.length ix.representatives

let type_of ix c =
  match Tuple.Map.find_opt c ix.types with
  | Some ty -> ty
  | None -> raise Not_found
