type nbh = {
  sub : Structure.t;
  center : int list;
  original : int array;
}

let of_tuple g gf ~rho c =
  let sphere = Gaifman.sphere_tuple gf ~rho c in
  (* Put the tuple's own elements first so their new ids are stable. *)
  let sub, original = Structure.induced g (Array.to_list c @ sphere) in
  let new_id = Hashtbl.create 16 in
  Array.iteri (fun nw old -> Hashtbl.replace new_id old nw) original;
  let center = List.map (Hashtbl.find new_id) (Array.to_list c) in
  { sub; center; original }

let equivalent g gf ~rho a b =
  let na = of_tuple g gf ~rho a and nb = of_tuple g gf ~rho b in
  Iso.isomorphic na.sub na.center nb.sub nb.center

type index = {
  rho : int;
  types : int Tuple.Map.t;
  representatives : Tuple.t array;
}

let all_tuples g ~arity =
  let n = Structure.size g in
  let rec go k acc =
    if k = 0 then acc
    else
      go (k - 1)
        (List.concat_map
           (fun rest -> List.init n (fun x -> x :: rest))
           acc)
  in
  List.map Tuple.of_list (go arity [ [] ])

(* Cheap isomorphism invariants of a neighborhood, used to pre-bucket
   before the refinement certificate and the exact in-bucket search:
   universe size, tuple count, the degree multiset of the sphere's
   Gaifman graph, and the equality pattern of the center (all preserved
   by any isomorphism that maps i-th distinguished to i-th).  Buckets
   get finer, so the quadratic all-pairs search inside each bucket runs
   on far fewer candidates. *)
let cheap_invariants nb =
  let gf = Gaifman.of_structure nb.sub in
  let degrees =
    List.sort compare
      (List.map (Gaifman.degree gf) (Structure.universe nb.sub))
  in
  Hashtbl.hash
    (Structure.size nb.sub, Structure.tuples_count nb.sub, degrees, nb.center)

let distinct_tuples tuples =
  (* first-occurrence order, which fixes the type-id numbering *)
  let seen = ref Tuple.Set.empty in
  List.filter
    (fun c ->
      if Tuple.Set.mem c !seen then false
      else begin
        seen := Tuple.Set.add c !seen;
        true
      end)
    tuples

let index ?jobs g ~rho tuples =
  let gf = Gaifman.of_structure g in
  let tups = Array.of_list (distinct_tuples tuples) in
  let n = Array.length tups in
  (* Phase 1 (parallel): materialize every neighborhood and its
     invariants.  Each tuple is independent work over the shared
     immutable structure. *)
  let keyed =
    Wm_par.Pool.parallel_map ?jobs
      (fun c ->
        let nb = of_tuple g gf ~rho c in
        (nb, cheap_invariants nb, Iso.certificate nb.sub nb.center))
      tups
  in
  (* Phase 2 (sequential, cheap): group slots into buckets keyed by
     (cheap invariants, certificate), keeping first-seen order both of
     buckets and within each bucket. *)
  let btbl : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let border = ref [] in
  Array.iteri
    (fun i (_, ck, cert) ->
      match Hashtbl.find_opt btbl (ck, cert) with
      | Some slots -> slots := i :: !slots
      | None ->
          Hashtbl.add btbl (ck, cert) (ref [ i ]);
          border := (ck, cert) :: !border)
    keyed;
  let buckets =
    Array.of_list
      (List.rev_map
         (fun k -> Array.of_list (List.rev !(Hashtbl.find btbl k)))
         !border)
  in
  (* Phase 3 (parallel): exact classification inside each bucket.
     Buckets are independent; within one bucket the search is the
     sequential scan against the bucket's representatives.  For each
     slot we record its leader: the slot of the first bucket member it
     is isomorphic to.  Representatives of one bucket are pairwise
     non-isomorphic, so a member matches at most one of them and the
     leader is well defined regardless of search order. *)
  let leader = Array.make n (-1) in
  let classified =
    Wm_par.Pool.parallel_map ?jobs
      (fun slots ->
        let reps = ref [] in
        Array.map
          (fun i ->
            let nb, _, _ = keyed.(i) in
            match
              List.find_opt
                (fun (_, rep) ->
                  Iso.isomorphic nb.sub nb.center rep.sub rep.center)
                !reps
            with
            | Some (l, _) -> l
            | None ->
                reps := (i, nb) :: !reps;
                i)
          slots)
      buckets
  in
  Array.iteri
    (fun b slots ->
      Array.iteri (fun k i -> leader.(i) <- classified.(b).(k)) slots)
    buckets;
  (* Phase 4 (sequential): number the classes by first occurrence, which
     reproduces the type ids of the plain sequential fold exactly. *)
  let ty_of_leader = Hashtbl.create 64 in
  let reps = ref [] in
  let next_ty = ref 0 in
  let types = ref Tuple.Map.empty in
  Array.iteri
    (fun i c ->
      let l = leader.(i) in
      let ty =
        match Hashtbl.find_opt ty_of_leader l with
        | Some ty -> ty
        | None ->
            let ty = !next_ty in
            incr next_ty;
            Hashtbl.add ty_of_leader l ty;
            reps := tups.(l) :: !reps;
            ty
      in
      types := Tuple.Map.add c ty !types)
    tups;
  { rho; types = !types; representatives = Array.of_list (List.rev !reps) }

let index_universe ?jobs g ~rho ~arity = index ?jobs g ~rho (all_tuples g ~arity)

let ntp ix = Array.length ix.representatives

let type_of ix c =
  match Tuple.Map.find_opt c ix.types with
  | Some ty -> ty
  | None -> raise Not_found
