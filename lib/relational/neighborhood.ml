type nbh = {
  sub : Structure.t;
  center : int list;
  original : int array;
}

(* Observability (DESIGN.md 5.8/5.9).  The counters decompose the cost
   claims of E20-E23: how many spheres were actually extracted by BFS
   (vs served from the per-index cache), how many induced-substructure
   scans the sphere-set dedupe shared, how many exact isomorphism tests
   ran, and how many the cheap-invariant pre-bucketing avoided. *)
module Obs = Wm_obs.Obs

let c_spheres = Obs.counter "nbh.spheres"
let c_sphere_hits = Obs.counter "nbh.sphere_cache_hits"
let c_subs_deduped = Obs.counter "nbh.subs_deduped"
let c_tuples_typed = Obs.counter "nbh.tuples_typed"
let c_buckets = Obs.counter "nbh.buckets"
let c_iso_checks = Obs.counter "nbh.iso_checks"
let c_iso_avoided = Obs.counter "nbh.iso_avoided"
let c_affected_elements = Obs.counter "nbh.reindex.affected_elements"
let c_affected_tuples = Obs.counter "nbh.reindex.affected_tuples"
let c_anchors = Obs.counter "nbh.reindex.anchors"
let c_fallbacks = Obs.counter "nbh.reindex.threshold_fallbacks"
let t_index = Obs.timer "nbh.index"
let t_reindex = Obs.timer "nbh.reindex"
let t_spheres = Obs.timer "nbh.index.spheres"
let t_classify = Obs.timer "nbh.index.classify"
let t_renumber = Obs.timer "nbh.index.renumber"

let iso_check pa pb =
  Obs.incr c_iso_checks;
  Iso.isomorphic_prep pa pb

let of_tuple g gf ~rho c =
  Obs.incr c_spheres;
  let sphere = Gaifman.sphere_tuple gf ~rho c in
  (* Put the tuple's own elements first so their new ids are stable. *)
  let sub, original = Structure.induced g (Array.to_list c @ sphere) in
  let new_id = Hashtbl.create 16 in
  Array.iteri (fun nw old -> Hashtbl.replace new_id old nw) original;
  let center = List.map (Hashtbl.find new_id) (Array.to_list c) in
  { sub; center; original }

let equivalent g gf ~rho a b =
  let na = of_tuple g gf ~rho a and nb = of_tuple g gf ~rho b in
  Iso.isomorphic na.sub na.center nb.sub nb.center

type index = {
  rho : int;
  arity : int;
  types : int Tuple.Map.t;
  representatives : Tuple.t array;
}

(* --- streaming enumeration of U^arity ------------------------------
   The enumeration order (first coordinate cycling fastest) fixes the
   type-id numbering, so [nth_tuple] must keep reproducing the order the
   original cons-list construction produced. *)

let ipow n k =
  let r = ref 1 in
  for _ = 1 to k do
    r := !r * n
  done;
  !r

let tuple_count n ~arity = if arity = 0 then 1 else ipow n arity

let nth_tuple n ~arity ix =
  let t = Array.make arity 0 in
  let r = ref ix in
  for j = 0 to arity - 1 do
    t.(j) <- !r mod n;
    r := !r / n
  done;
  t

let iter_all_tuples g ~arity f =
  let n = Structure.size g in
  for ix = 0 to tuple_count n ~arity - 1 do
    f (nth_tuple n ~arity ix)
  done

let all_tuples g ~arity =
  let n = Structure.size g in
  List.init (tuple_count n ~arity) (fun ix -> nth_tuple n ~arity ix)

let all_tuples_array g ~arity =
  let n = Structure.size g in
  Array.init (tuple_count n ~arity) (fun ix -> nth_tuple n ~arity ix)

(* --- the shared fast-path context (DESIGN.md 5.9) -------------------
   One [ctx] serves every materialization pass of one index/reindex call:

   - [spheres] memoizes [Gaifman.sphere_array] per element, so a tuple
     sphere is a union of cached arrays instead of arity-many BFS runs;
   - [incident] maps each element to the structure tuples containing it,
     so the members of a sphere are found by a local scan (proportional
     to the sphere's own tuples) instead of a full-relation sweep;
   - [groups] dedupes that member scan across all tuples sharing one
     sphere (sorted element set) — heavy overlap at arity >= 2.

   The tables are only mutated in the sequential grouping phases; the
   parallel phases read frozen entries, which keeps the pool's
   bit-identical-for-every-job-count contract. *)

type ctx = {
  cg : Structure.t;
  cgf : Gaifman.t;
  crho : int;
  use_cache : bool;
  incident : (string * Tuple.t) list array;
  spheres : int array option array;
  groups : (int array, (string * Tuple.t) list option ref) Hashtbl.t;
}

let make_ctx ?(use_cache = true) g gf ~rho =
  let n = Structure.size g in
  let incident = Array.make n [] in
  Structure.fold_relations
    (fun name r () ->
      Relation.iter
        (fun t ->
          Array.iteri
            (fun i x ->
              (* record once per distinct element of the tuple *)
              let rec first j = if t.(j) = x then j else first (j + 1) in
              if first 0 = i then incident.(x) <- (name, t) :: incident.(x))
            t)
        r)
    g ();
  {
    cg = g;
    cgf = gf;
    crho = rho;
    use_cache;
    incident;
    spheres = Array.make n None;
    groups = Hashtbl.create 256;
  }

(* Tuples of the structure lying entirely inside the sphere [s] (sorted
   element-set array): a scan local to [s], deduplicated by charging each
   tuple to its first element.  Membership is binary search in [s] —
   a universe-sized seen-array here would cost O(n) per distinct sphere,
   quadratic when (as on the ring workloads) almost every sphere is
   distinct. *)
let mem_sorted (s : int array) y =
  let lo = ref 0 and hi = ref (Array.length s - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let v = s.(mid) in
    if v = y then found := true
    else if v < y then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let members_in ctx s =
  let acc = ref [] in
  Array.iter
    (fun x ->
      List.iter
        (fun ((_, t) as entry) ->
          if t.(0) = x && Array.for_all (fun y -> mem_sorted s y) t then
            acc := entry :: !acc)
        ctx.incident.(x))
    s;
  !acc

let icmp (a : int) b = compare a b

(* Sorted union of the (cached) element spheres of [c]. *)
let sphere_union ctx c =
  let sphere_of x =
    match ctx.spheres.(x) with
    | Some s -> s
    | None ->
        Obs.incr c_spheres;
        Gaifman.sphere_array ctx.cgf ~rho:ctx.crho x
  in
  match Array.length c with
  | 0 -> [||]
  | 1 -> sphere_of c.(0)
  | _ ->
      let parts = Array.map sphere_of c in
      let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 parts in
      let buf = Array.make total 0 in
      let p = ref 0 in
      Array.iter
        (fun s ->
          Array.blit s 0 buf !p (Array.length s);
          p := !p + Array.length s)
        parts;
      Array.sort icmp buf;
      let w = ref 0 in
      Array.iter
        (fun v ->
          if !w = 0 || buf.(!w - 1) <> v then begin
            buf.(!w) <- v;
            incr w
          end)
        buf;
      Array.sub buf 0 !w

(* Materialize classification data for every tuple: bucket key (cheap
   invariants), certificate, and the {!Iso.prep} reused by every exact
   in-bucket test.  The induced substructure and its Gaifman graph are
   built once per tuple and threaded through all three consumers. *)
let materialize ctx ?jobs tups =
  (* Phase A (parallel): BFS the spheres of elements not yet cached. *)
  if ctx.use_cache then begin
    let n = Structure.size ctx.cg in
    let pending = Array.make n false in
    let missing = ref [] and nmiss = ref 0 and lookups = ref 0 in
    Array.iter
      (fun c ->
        Array.iter
          (fun x ->
            incr lookups;
            if ctx.spheres.(x) = None && not pending.(x) then begin
              pending.(x) <- true;
              missing := x :: !missing;
              incr nmiss
            end)
          c)
      tups;
    let missing = Array.of_list (List.rev !missing) in
    let computed =
      Wm_par.Pool.parallel_map ?jobs
        (fun x -> Gaifman.sphere_array ctx.cgf ~rho:ctx.crho x)
        missing
    in
    Array.iteri (fun i x -> ctx.spheres.(x) <- Some computed.(i)) missing;
    Obs.add c_spheres !nmiss;
    Obs.add c_sphere_hits (!lookups - !nmiss)
  end;
  (* Phase B (sequential, cheap): tuple spheres by union, grouped by
     sphere so the member scan below runs once per distinct sphere. *)
  let sets = Array.map (fun c -> sphere_union ctx c) tups in
  let fresh = ref [] in
  if ctx.use_cache then
    Array.iter
      (fun s ->
        if Hashtbl.mem ctx.groups s then Obs.incr c_subs_deduped
        else begin
          Hashtbl.add ctx.groups s (ref None);
          fresh := s :: !fresh
        end)
      sets;
  (* Phase C (parallel): one member scan per fresh sphere group. *)
  let fresh = Array.of_list (List.rev !fresh) in
  let scanned = Wm_par.Pool.parallel_map ?jobs (fun s -> members_in ctx s) fresh in
  Array.iteri (fun i s -> Hashtbl.find ctx.groups s := Some scanned.(i)) fresh;
  (* Phase D (parallel): per-tuple substructure, sub-Gaifman graph, cheap
     key, certificate, refinement prep. *)
  let schema = Structure.schema ctx.cg in
  Wm_par.Pool.parallel_mapi ?jobs
    (fun i c ->
      let s = sets.(i) in
      let members =
        if ctx.use_cache then
          match !(Hashtbl.find ctx.groups s) with
          | Some m -> m
          | None -> assert false
        else members_in ctx s
      in
      let k = Array.length s in
      (* Renaming: the tuple's own elements first (stable center ids),
         then the rest of the sphere in ascending order. *)
      let new_id = Hashtbl.create (2 * k) in
      let pos = ref 0 in
      let place x =
        if not (Hashtbl.mem new_id x) then begin
          Hashtbl.add new_id x !pos;
          incr pos
        end
      in
      Array.iter place c;
      Array.iter place s;
      let ren t = Array.map (fun x -> Hashtbl.find new_id x) t in
      let by_rel : (string, Tuple.t list ref) Hashtbl.t = Hashtbl.create 8 in
      let renamed_all = ref [] in
      List.iter
        (fun (name, t) ->
          let rt = ren t in
          renamed_all := rt :: !renamed_all;
          match Hashtbl.find_opt by_rel name with
          | Some l -> l := rt :: !l
          | None -> Hashtbl.add by_rel name (ref [ rt ]))
        members;
      let sub =
        Hashtbl.fold
          (fun name ts acc ->
            let arity = Relation.arity (Structure.relation acc name) in
            Structure.set_relation acc name (Relation.of_list arity !ts))
          by_rel
          (Structure.create schema k)
      in
      let gf_sub = Gaifman.of_tuples ~n:k !renamed_all in
      let center = List.map (Hashtbl.find new_id) (Array.to_list c) in
      let prep = Iso.prep ~gf:gf_sub sub center in
      (* Cheap invariants, deep-hashed: sphere size, member count, degree
         multiset of the sub-Gaifman graph, center equality pattern. *)
      let degs = Gaifman.degrees gf_sub in
      Array.sort icmp degs;
      let h = ref (Iso.mix 0x9e3779b9 k) in
      h := Iso.mix !h (List.length members);
      Array.iter (fun d -> h := Iso.mix !h d) degs;
      List.iter (fun x -> h := Iso.mix !h x) center;
      (!h, Iso.certificate_of_prep prep, prep))
    tups

let distinct_tuples tuples =
  (* first-occurrence order, which fixes the type-id numbering *)
  let seen = ref Tuple.Set.empty in
  List.filter
    (fun c ->
      if Tuple.Set.mem c !seen then false
      else begin
        seen := Tuple.Set.add c !seen;
        true
      end)
    tuples

let run_index ctx ?jobs tups ~rho ~arity =
  let n = Array.length tups in
  Obs.add c_tuples_typed n;
  (* Phase 1 (parallel): materialize every neighborhood's classification
     data through the shared context. *)
  let keyed = Obs.span t_spheres @@ fun () -> materialize ctx ?jobs tups in
  (* Phase 2 (sequential, cheap): group slots into buckets keyed by
     (cheap invariants, certificate), keeping first-seen order both of
     buckets and within each bucket. *)
  let btbl : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let border = ref [] in
  Array.iteri
    (fun i (ck, cert, _) ->
      match Hashtbl.find_opt btbl (ck, cert) with
      | Some slots -> slots := i :: !slots
      | None ->
          Hashtbl.add btbl (ck, cert) (ref [ i ]);
          border := (ck, cert) :: !border)
    keyed;
  let buckets =
    Array.of_list
      (List.rev_map
         (fun k -> Array.of_list (List.rev !(Hashtbl.find btbl k)))
         !border)
  in
  Obs.add c_buckets (Array.length buckets);
  (* Phase 3 (parallel): exact classification inside each bucket.
     Buckets are independent; within one bucket the search is the
     sequential scan against the bucket's representatives.  For each
     slot we record its leader: the slot of the first bucket member it
     is isomorphic to.  Representatives of one bucket are pairwise
     non-isomorphic, so a member matches at most one of them and the
     leader is well defined regardless of search order. *)
  let leader = Array.make n (-1) in
  let classified =
    Obs.span t_classify @@ fun () ->
    Wm_par.Pool.parallel_map ?jobs
      (fun slots ->
        let reps = ref [] in
        let leaders =
          Array.map
            (fun i ->
              let _, _, prep = keyed.(i) in
              match
                List.find_opt (fun (_, rep) -> iso_check prep rep) !reps
              with
              | Some (l, _) -> l
              | None ->
                  reps := (i, prep) :: !reps;
                  i)
            slots
        in
        (leaders, List.length !reps))
      buckets
  in
  Array.iteri
    (fun b slots ->
      Array.iteri (fun k i -> leader.(i) <- (fst classified.(b)).(k)) slots)
    buckets;
  (if Obs.enabled () then
     (* What pre-bucketing saved: a bucket-less scan compares each tuple
        against every representative outside its own bucket as well. *)
     let total_reps =
       Array.fold_left (fun acc (_, r) -> acc + r) 0 classified
     in
     Array.iteri
       (fun b slots ->
         Obs.add c_iso_avoided
           (Array.length slots * (total_reps - snd classified.(b))))
       buckets);
  (* Phase 4 (sequential): number the classes by first occurrence, which
     reproduces the type ids of the plain sequential fold exactly. *)
  Obs.span t_renumber @@ fun () ->
  let ty_of_leader = Hashtbl.create 64 in
  let reps = ref [] in
  let next_ty = ref 0 in
  let types = ref Tuple.Map.empty in
  Array.iteri
    (fun i c ->
      let l = leader.(i) in
      let ty =
        match Hashtbl.find_opt ty_of_leader l with
        | Some ty -> ty
        | None ->
            let ty = !next_ty in
            incr next_ty;
            Hashtbl.add ty_of_leader l ty;
            reps := tups.(l) :: !reps;
            ty
      in
      types := Tuple.Map.add c ty !types)
    tups;
  { rho; arity; types = !types; representatives = Array.of_list (List.rev !reps) }

let index ?(sphere_cache = true) ?jobs g ~rho tuples =
  Obs.span t_index @@ fun () ->
  let gf = Gaifman.of_structure g in
  let ctx = make_ctx ~use_cache:sphere_cache g gf ~rho in
  let tups = Array.of_list (distinct_tuples tuples) in
  let arity = if Array.length tups > 0 then Array.length tups.(0) else 0 in
  run_index ctx ?jobs tups ~rho ~arity

let index_universe ?sphere_cache ?jobs g ~rho ~arity =
  Obs.span t_index @@ fun () ->
  let gf = Gaifman.of_structure g in
  let ctx = make_ctx ?use_cache:sphere_cache g gf ~rho in
  run_index ctx ?jobs (all_tuples_array g ~arity) ~rho ~arity

let affected_elements ~old_gf ~gf ~rho ~dirty =
  (* Both graphs: an inserted edge shortens distances only in the new graph,
     a deleted one only in the old; a tuple's sphere can change iff one of
     its elements is within rho of a dirty element in either. *)
  List.sort_uniq compare
    (Gaifman.reach old_gf ~sources:dirty ~bound:rho
    @ Gaifman.reach gf ~sources:dirty ~bound:rho)

let reindex ?jobs ?(threshold = 0.5) ~old g ~prev ~dirty =
  Obs.span t_reindex @@ fun () ->
  let rho = prev.rho and arity = prev.arity in
  let old_gf = Gaifman.of_structure old in
  let gf = Gaifman.refresh g ~prev:old_gf ~dirty in
  let n = Structure.size g in
  let affected = affected_elements ~old_gf ~gf ~rho ~dirty in
  Obs.add c_affected_elements (List.length affected);
  let in_a = Array.make (max n (Structure.size old)) false in
  List.iter (fun x -> in_a.(x) <- true) affected;
  let a_new = List.length (List.filter (fun x -> x < n) affected) in
  let total = float_of_int n ** float_of_int arity in
  let affected_tuples = total -. (float_of_int (n - a_new) ** float_of_int arity) in
  if total = 0. || affected_tuples > threshold *. total then begin
    Obs.incr c_fallbacks;
    index_universe ?jobs g ~rho ~arity
  end
  else begin
    let ctx = make_ctx g gf ~rho in
    let touches c = Array.exists (fun x -> in_a.(x)) c in
    (* Anchors: for every old type that still has a member untouched by the
       affected region, any such member — its neighborhood is unchanged, so
       it stands in for the whole class during reclassification.  Old
       classes cannot merge (their untouched members stay non-isomorphic),
       so matching an anchor is unambiguous. *)
    let ntp_old = Array.length prev.representatives in
    let anchor = Array.make ntp_old None in
    Tuple.Map.iter
      (fun c ty ->
        if
          anchor.(ty) = None
          && not (Array.exists (fun x -> x >= n || in_a.(x)) c)
        then anchor.(ty) <- Some c)
      prev.types;
    let anchors =
      let acc = ref [] in
      for ty = ntp_old - 1 downto 0 do
        match anchor.(ty) with
        | Some c -> acc := (ty, c) :: !acc
        | None -> ()
      done;
      Array.of_list !acc
    in
    let anchor_keyed = materialize ctx ?jobs (Array.map snd anchors) in
    let atbl : (int * int, (int * Iso.prep) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    Array.iteri
      (fun i (ck, cert, prep) ->
        let ty = fst anchors.(i) in
        match Hashtbl.find_opt atbl (ck, cert) with
        | Some l -> l := (ty, prep) :: !l
        | None -> Hashtbl.add atbl (ck, cert) (ref [ (ty, prep) ]))
      anchor_keyed;
    Obs.add c_anchors (Array.length anchors);
    (* Affected tuples, in enumeration order so numbering below matches the
       from-scratch index; everything else keeps its old class. *)
    let at =
      let acc = ref [] in
      iter_all_tuples g ~arity (fun c -> if touches c then acc := c :: !acc);
      Array.of_list (List.rev !acc)
    in
    Obs.add c_affected_tuples (Array.length at);
    let keyed = materialize ctx ?jobs at in
    let btbl : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let border = ref [] in
    Array.iteri
      (fun i (ck, cert, _) ->
        match Hashtbl.find_opt btbl (ck, cert) with
        | Some slots -> slots := i :: !slots
        | None ->
            Hashtbl.add btbl (ck, cert) (ref [ i ]);
            border := (ck, cert) :: !border)
      keyed;
    let buckets =
      Array.of_list
        (List.rev_map
           (fun k -> (k, Array.of_list (List.rev !(Hashtbl.find btbl k))))
           !border)
    in
    (* Class keys: [0 .. ntp_old-1] are surviving old classes, [ntp_old + i]
       is a fresh class led by affected slot [i].  A fresh leader is not
       isomorphic to any anchor of its bucket, hence to no surviving old
       class; so every tuple matches at most one candidate and the result
       does not depend on how buckets are scheduled. *)
    let classified =
      Wm_par.Pool.parallel_map ?jobs
        (fun (key, slots) ->
          let anchors_here =
            match Hashtbl.find_opt atbl key with
            | Some l -> List.rev !l
            | None -> []
          in
          let reps = ref [] in
          Array.map
            (fun i ->
              let _, _, prep = keyed.(i) in
              let iso (_, r) = iso_check prep r in
              match List.find_opt iso anchors_here with
              | Some (ty, _) -> ty
              | None -> (
                  match List.find_opt iso !reps with
                  | Some (cls, _) -> cls
                  | None ->
                      let cls = ntp_old + i in
                      reps := (cls, prep) :: !reps;
                      cls))
            slots)
        buckets
    in
    let cls = Array.make (Array.length at) (-1) in
    Array.iteri
      (fun b (_, slots) ->
        Array.iteri (fun k i -> cls.(i) <- classified.(b).(k)) slots)
      buckets;
    let cls_of_tuple = Tuple.Hashtbl.create (max 16 (Array.length at)) in
    Array.iteri (fun i c -> Tuple.Hashtbl.replace cls_of_tuple c cls.(i)) at;
    (* Renumber every class by first occurrence over the full enumeration —
       the same sequential pass as the from-scratch phase 4, so type ids and
       representatives come out bit-identical. *)
    let ty_of_cls = Hashtbl.create 64 in
    let reps = ref [] in
    let next_ty = ref 0 in
    let types = ref Tuple.Map.empty in
    iter_all_tuples g ~arity (fun c ->
        let k =
          match Tuple.Hashtbl.find_opt cls_of_tuple c with
          | Some k -> k
          | None -> Tuple.Map.find c prev.types
        in
        let ty =
          match Hashtbl.find_opt ty_of_cls k with
          | Some ty -> ty
          | None ->
              let ty = !next_ty in
              incr next_ty;
              Hashtbl.add ty_of_cls k ty;
              reps := c :: !reps;
              ty
        in
        types := Tuple.Map.add c ty !types);
    { rho; arity; types = !types; representatives = Array.of_list (List.rev !reps) }
  end

let ntp ix = Array.length ix.representatives

let type_of ix c =
  match Tuple.Map.find_opt c ix.types with
  | Some ty -> ty
  | None -> raise Not_found
