type nbh = {
  sub : Structure.t;
  center : int list;
  original : int array;
}

(* Observability (DESIGN.md 5.8/5.9).  The counters decompose the cost
   claims of E20-E23: how many spheres were actually extracted by BFS
   (vs served from the per-index cache), how many induced-substructure
   scans the sphere-set dedupe shared, how many exact isomorphism tests
   ran, and how many the cheap-invariant pre-bucketing avoided. *)
module Obs = Wm_obs.Obs

let c_spheres = Obs.counter "nbh.spheres"
let c_sphere_hits = Obs.counter "nbh.sphere_cache_hits"
let c_subs_deduped = Obs.counter "nbh.subs_deduped"
let c_tuples_typed = Obs.counter "nbh.tuples_typed"
let c_buckets = Obs.counter "nbh.buckets"
let c_iso_checks = Obs.counter "nbh.iso_checks"
let c_iso_avoided = Obs.counter "nbh.iso_avoided"
let c_affected_elements = Obs.counter "nbh.reindex.affected_elements"
let c_affected_tuples = Obs.counter "nbh.reindex.affected_tuples"
let c_anchors = Obs.counter "nbh.reindex.anchors"
let c_fallbacks = Obs.counter "nbh.reindex.threshold_fallbacks"
let c_bw_decomps = Obs.counter "nbh.bw.decompositions"
let c_bw_decomp_hits = Obs.counter "nbh.bw.decomp_cache_hits"
let c_bw_groups = Obs.counter "nbh.bw.groups"
let c_bw_bypassed = Obs.counter "nbh.bw.iso_bypassed"
let c_bw_fallbacks = Obs.counter "nbh.bw.width_fallbacks"
let c_bw_max_width = Obs.counter "nbh.bw.max_width_seen"
let t_index = Obs.timer "nbh.index"
let t_reindex = Obs.timer "nbh.reindex"
let t_spheres = Obs.timer "nbh.index.spheres"
let t_codes = Obs.timer "nbh.index.codes"
let t_prep = Obs.timer "nbh.index.prep"
let t_classify = Obs.timer "nbh.index.classify"
let t_renumber = Obs.timer "nbh.index.renumber"

(* [nbh.bw.max_width_seen] is a high-water mark dressed as a counter:
   counters merge across domains by summation, so the running max lives
   in a process-global atomic and only the *increase* is added to the
   counter — the deltas telescope to the max.  Widths above the active
   bound are recorded as bound + 1 (the probe aborts there). *)
let bw_max_seen = Atomic.make 0

let note_width w =
  let rec go () =
    let cur = Atomic.get bw_max_seen in
    if w > cur then
      if Atomic.compare_and_set bw_max_seen cur w then
        Obs.add c_bw_max_width (w - cur)
      else go ()
  in
  go ()

(* --- width-bound resolution (DESIGN.md 5.14) ------------------------
   ?width_bound argument > set_width_bound > WMARK_WIDTH_BOUND > off.
   [None] means the generic typing path; [Some k] enables the bounded
   decomposition-code path for spheres of heuristic width <= k.  The
   environment is parsed once at module initialization, mirroring
   Pool.env_jobs, so a mis-set CI variable warns exactly once. *)

let env_width_bound =
  match Sys.getenv_opt "WMARK_WIDTH_BOUND" with
  | None -> None
  | Some s -> (
      match String.trim s with
      | "" | "0" -> None
      | ts -> (
          match int_of_string_opt ts with
          | Some k when k >= 1 -> Some k
          | _ ->
              Printf.eprintf
                "wmark: ignoring WMARK_WIDTH_BOUND=%s (not a nonnegative \
                 integer), using the generic typing path\n\
                 %!"
                (Filename.quote s);
              None))

let wb_override : int option option Atomic.t = Atomic.make None

let set_width_bound = function
  | None -> Atomic.set wb_override None
  | Some k when k < 0 ->
      invalid_arg "Neighborhood.set_width_bound: bound must be >= 0"
  | Some 0 -> Atomic.set wb_override (Some None)
  | Some k -> Atomic.set wb_override (Some (Some k))

let width_bound () =
  match Atomic.get wb_override with Some b -> b | None -> env_width_bound

let resolve_bound = function
  | Some k when k < 0 ->
      invalid_arg "Neighborhood: width_bound must be >= 0"
  | Some 0 -> None
  | Some k -> Some k
  | None -> width_bound ()

let iso_check pa pb =
  Obs.incr c_iso_checks;
  Iso.isomorphic_prep pa pb

let of_tuple g gf ~rho c =
  Obs.incr c_spheres;
  let sphere = Gaifman.sphere_tuple gf ~rho c in
  (* Put the tuple's own elements first so their new ids are stable. *)
  let sub, original = Structure.induced g (Array.to_list c @ sphere) in
  let new_id = Hashtbl.create 16 in
  Array.iteri (fun nw old -> Hashtbl.replace new_id old nw) original;
  let center = List.map (Hashtbl.find new_id) (Array.to_list c) in
  { sub; center; original }

let equivalent g gf ~rho a b =
  let na = of_tuple g gf ~rho a and nb = of_tuple g gf ~rho b in
  Iso.isomorphic na.sub na.center nb.sub nb.center

type index = {
  rho : int;
  arity : int;
  types : int Tuple.Map.t;
  representatives : Tuple.t array;
}

(* --- streaming enumeration of U^arity ------------------------------
   The enumeration order (first coordinate cycling fastest) fixes the
   type-id numbering, so [nth_tuple] must keep reproducing the order the
   original cons-list construction produced. *)

let ipow n k =
  let r = ref 1 in
  for _ = 1 to k do
    r := !r * n
  done;
  !r

let tuple_count n ~arity = if arity = 0 then 1 else ipow n arity

let nth_tuple n ~arity ix =
  let t = Array.make arity 0 in
  let r = ref ix in
  for j = 0 to arity - 1 do
    t.(j) <- !r mod n;
    r := !r / n
  done;
  t

let iter_all_tuples g ~arity f =
  let n = Structure.size g in
  for ix = 0 to tuple_count n ~arity - 1 do
    f (nth_tuple n ~arity ix)
  done

let all_tuples g ~arity =
  let n = Structure.size g in
  List.init (tuple_count n ~arity) (fun ix -> nth_tuple n ~arity ix)

let all_tuples_array g ~arity =
  let n = Structure.size g in
  Array.init (tuple_count n ~arity) (fun ix -> nth_tuple n ~arity ix)

(* --- the shared fast-path context (DESIGN.md 5.9) -------------------
   One [ctx] serves every materialization pass of one index/reindex call:

   - [spheres] memoizes [Gaifman.sphere_array] per element, so a tuple
     sphere is a union of cached arrays instead of arity-many BFS runs;
   - [incident] maps each element to the structure tuples containing it,
     so the members of a sphere are found by a local scan (proportional
     to the sphere's own tuples) instead of a full-relation sweep;
   - [groups] dedupes that member scan across all tuples sharing one
     sphere (sorted element set) — heavy overlap at arity >= 2.

   The tables are only mutated in the sequential grouping phases; the
   parallel phases read frozen entries, which keeps the pool's
   bit-identical-for-every-job-count contract. *)

(* Per-sphere decomposition data for the bounded path: the min-degree
   tree decomposition of the sphere's sub-Gaifman graph (over the
   sphere-local ascending renaming, which is center-independent and so
   shared by every tuple with this sphere) plus iso-invariant vertex
   colors.  [d_dec] is an aborted width probe when [d_width] exceeds the
   bound — such spheres fall back to the generic per-tuple prep. *)
type dinfo = {
  mutable d_id : int;
      (* dense per-ctx id, assigned sequentially after the parallel
         probe pass: the dedup key for per-tuple canonical codes
         ((d_id, center labels) determines the code).  [-1] until
         assigned; never assigned on the uncached path, which computes
         codes directly. *)
  d_width : int;
  d_dec : Tdecomp.t;
  d_colors : int array;
  d_rels : (int * int * int array array) array;
      (* (rel_id, arity, sphere-locally renamed member tuples),
         rel_id-ascending — precomputed so the per-tuple encoder only
         applies the canonical relabeling and sorts *)
}

type ctx = {
  cg : Structure.t;
  cgf : Gaifman.t;
  crho : int;
  use_cache : bool;
  bound : int option;
  rel_id : (string, int) Hashtbl.t;
      (* schema name -> dense id, name-sorted: an injective, structure-
         independent relation code for the flat sphere encodings *)
  incident : (string * Tuple.t) list array;
  spheres : int array option array;
  groups : (int array, (string * Tuple.t) list option ref) Hashtbl.t;
  decomps : (int array, dinfo option ref) Hashtbl.t;
  mutable next_did : int;  (* next dinfo id (sequential phases only) *)
}

let make_ctx ?(use_cache = true) ?bound g gf ~rho =
  let n = Structure.size g in
  let incident = Array.make n [] in
  Structure.fold_relations
    (fun name r () ->
      Relation.iter
        (fun t ->
          Array.iteri
            (fun i x ->
              (* record once per distinct element of the tuple *)
              let rec first j = if t.(j) = x then j else first (j + 1) in
              if first 0 = i then incident.(x) <- (name, t) :: incident.(x))
            t)
        r)
    g ();
  let rel_id = Hashtbl.create 8 in
  let names = Structure.fold_relations (fun name _ acc -> name :: acc) g [] in
  List.iteri
    (fun i name -> Hashtbl.replace rel_id name i)
    (List.sort compare names);
  {
    cg = g;
    cgf = gf;
    crho = rho;
    use_cache;
    bound;
    rel_id;
    incident;
    spheres = Array.make n None;
    groups = Hashtbl.create 256;
    decomps = Hashtbl.create 256;
    next_did = 0;
  }

(* Tuples of the structure lying entirely inside the sphere [s] (sorted
   element-set array): a scan local to [s], deduplicated by charging each
   tuple to its first element.  Membership is binary search in [s] —
   a universe-sized seen-array here would cost O(n) per distinct sphere,
   quadratic when (as on the ring workloads) almost every sphere is
   distinct. *)
let mem_sorted (s : int array) y =
  let lo = ref 0 and hi = ref (Array.length s - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let v = s.(mid) in
    if v = y then found := true
    else if v < y then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let members_in ctx s =
  let acc = ref [] in
  Array.iter
    (fun x ->
      List.iter
        (fun ((_, t) as entry) ->
          if t.(0) = x && Array.for_all (fun y -> mem_sorted s y) t then
            acc := entry :: !acc)
        ctx.incident.(x))
    s;
  !acc

let icmp (a : int) b = compare a b

(* Index of [y] in the sorted sphere array [s]; [y] must be a member. *)
let idx_sorted (s : int array) y =
  let lo = ref 0 and hi = ref (Array.length s - 1) and r = ref (-1) in
  while !r < 0 && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let v = s.(mid) in
    if v = y then r := mid else if v < y then lo := mid + 1 else hi := mid - 1
  done;
  !r

(* --- the bounded-width fast path (DESIGN.md 5.14) -------------------

   When a width bound k is active, each distinct renamed sphere shape
   gets one decomposition probe: rename the sphere to 0..|s|-1 in
   ascending element order (center-independent, so the result is shared
   by every tuple with this sphere), key it by the injective flat
   encoding of its renamed member list — equal keys are literally the
   same renamed structure, so on translation-regular instances (grids,
   paths, balanced trees) thousands of spheres collapse onto a handful
   of representatives — and run bitmask min-degree elimination capped at
   k on each representative.  Spheres within the bound are typed by a
   {e canonical decomposition code} per tuple — a flat int encoding of
   the whole pointed sphere under the relabeling the rooted
   decomposition induces, computed once per distinct (shape, center
   labels) pair — and tuples with equal codes inherit their group
   leader's materialization and classification outright.

   Soundness is one-directional by construction: the encoding lists
   every member tuple of every relation under a bijective relabeling,
   so equal codes imply isomorphic pointed spheres {e exactly} — a
   group member is genuinely isomorphic to its leader, and inheriting
   the leader's (cheap key, certificate, prep) triple and in-bucket
   match reproduces what the generic scan would have computed for it.
   The converse (isomorphic spheres getting equal codes) is heuristic —
   the relabeling depends on the min-degree decomposition — and a miss
   only costs a redundant leader, never a wrong type: leaders still go
   through the exact certificate-bucketed isomorphism scan.  Output is
   therefore bit-identical to the generic path at every job count. *)

let popcount x =
  let c = ref 0 and x = ref x in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

(* Sphere-locally renamed member tuples tagged with their dense relation
   ids, in member-scan order. *)
let rename_members ctx s members =
  List.map
    (fun (name, t) ->
      (Hashtbl.find ctx.rel_id name, Array.map (fun x -> idx_sorted s x) t))
    members

(* Flat injective key of a renamed member list: [k; rel_id; arity;
   elems...; rel_id; arity; elems...] is uniquely decodable, so equal
   keys mean literally the same renamed structure.  Everything the
   bounded path derives per sphere (decomposition, colors, relation
   tables, and — given center labels — the canonical code) is a
   deterministic function of this key, which is what makes sharing one
   [dinfo] across equal-key spheres sound.  On translation-regular
   instances (grids, long paths, balanced trees) almost every sphere
   collapses onto a handful of representatives. *)
let rep_key k rmembers =
  let total =
    List.fold_left (fun acc (_, rt) -> acc + 2 + Array.length rt) 1 rmembers
  in
  let out = Array.make total 0 in
  out.(0) <- k;
  let p = ref 1 in
  List.iter
    (fun (id, rt) ->
      let a = Array.length rt in
      out.(!p) <- id;
      out.(!p + 1) <- a;
      Array.blit rt 0 out (!p + 2) a;
      p := !p + 2 + a)
    rmembers;
  out

(* Int-array-keyed tables that hash the whole key: the stdlib
   polymorphic hash stops after ten meaningful words, and sphere keys
   share long common prefixes. *)
module Key = struct
  type t = int array

  let equal (a : int array) b = a = b
  let hash a = Array.fold_left (fun h x -> Iso.mix h x) (Array.length a) a
end

module Ktbl = Hashtbl.Make (Key)

let dinfo_of ~bound k rmembers =
  Obs.incr c_bw_decomps;
  (* Word-sized spheres (every bounded-width workload in practice) get
     bitmask adjacency straight from the renamed member tuples; larger
     spheres fall back to the CSR Gaifman build. *)
  let dec, degree =
    if k <= 62 then begin
      let adj = Array.make k 0 in
      List.iter
        (fun (_, rt) ->
          let a = Array.length rt in
          for i = 0 to a - 1 do
            for j = 0 to a - 1 do
              if i <> j && rt.(i) <> rt.(j) then
                adj.(rt.(i)) <- adj.(rt.(i)) lor (1 lsl rt.(j))
            done
          done)
        rmembers;
      (Tdecomp.eliminate_masks ~cap:bound adj, fun v -> popcount adj.(v))
    end
    else begin
      let gf_s = Gaifman.of_tuples ~n:k (List.map snd rmembers) in
      (Tdecomp.eliminate ~cap:bound gf_s, Gaifman.degree gf_s)
    end
  in
  note_width dec.Tdecomp.width;
  if dec.Tdecomp.width > bound then
    (* aborted probe: the sphere falls back to the generic path, so the
       colors and relation tables are never consulted *)
    {
      d_id = -1;
      d_width = dec.Tdecomp.width;
      d_dec = dec;
      d_colors = [||];
      d_rels = [||];
    }
  else begin
    (* Iso-invariant vertex colors: degree plus the sorted multiset of
       (relation id, position) incidences.  Relation ids are name-sorted
       dense ids, fixed per ctx, so the invariant holds across every
       sphere one index call compares. *)
    let inc = Array.make k [] in
    List.iter
      (fun (id, rt) ->
        Array.iteri (fun pos v -> inc.(v) <- Iso.mix id pos :: inc.(v)) rt)
      rmembers;
    let colors =
      Array.init k (fun v ->
          let l = List.sort icmp inc.(v) in
          List.fold_left Iso.mix (Iso.mix 0x811c9dc5 (degree v)) l)
    in
    let by_rel : (int, int array list ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (id, rt) ->
        match Hashtbl.find_opt by_rel id with
        | Some l -> l := rt :: !l
        | None -> Hashtbl.add by_rel id (ref [ rt ]))
      rmembers;
    let d_rels =
      Array.of_list
        (List.sort
           (fun (a, _, _) (b, _, _) -> icmp a b)
           (Hashtbl.fold
              (fun id l acc ->
                let ts = Array.of_list !l in
                (id, Array.length ts.(0), ts) :: acc)
              by_rel []))
    in
    { d_id = -1; d_width = dec.Tdecomp.width; d_dec = dec; d_colors = colors; d_rels }
  end

let build_dinfo ctx s members ~bound =
  dinfo_of ~bound (Array.length s) (rename_members ctx s members)

(* The flat injective encoding of one pointed sphere under the
   decomposition's canonical relabeling.  Every component is length-
   prefixed, so the encoding is uniquely decodable: equal arrays imply
   equal renamed structures, centers included. *)
let cmp_tuple (a : int array) (b : int array) =
  (* same-arity lexicographic; arity differences can't arise within a
     relation but keep the order total anyway *)
  let la = Array.length a and lb = Array.length b in
  if la <> lb then icmp la lb
  else begin
    let i = ref 0 and r = ref 0 in
    while !r = 0 && !i < la do
      r := icmp a.(!i) b.(!i);
      incr i
    done;
    !r
  end

let code_of di cl =
  let k = Array.length di.d_colors in
  let colors =
    if Array.length cl = 0 then di.d_colors
    else begin
      let cp = Array.copy di.d_colors in
      Array.iteri (fun j v -> cp.(v) <- Iso.mix cp.(v) (j + 1)) cl;
      cp
    end
  in
  let pi = Tdecomp.canonical_labels di.d_dec ~colors ~root:cl.(0) in
  let total =
    Array.fold_left
      (fun acc (_, ar, ts) -> acc + 3 + (ar * Array.length ts))
      (2 + Array.length cl) di.d_rels
  in
  let out = Array.make total 0 in
  let p = ref 0 in
  let push x =
    out.(!p) <- x;
    incr p
  in
  push k;
  push (Array.length cl);
  Array.iter (fun v -> push pi.(v)) cl;
  Array.iter
    (fun (id, ar, ts) ->
      push id;
      push (Array.length ts);
      push ar;
      let mapped = Array.map (Array.map (fun v -> pi.(v))) ts in
      Array.sort cmp_tuple mapped;
      Array.iter (fun t -> Array.iter push t) mapped)
    di.d_rels;
  out

(* Sorted union of the (cached) element spheres of [c]. *)
let sphere_union ctx c =
  let sphere_of x =
    match ctx.spheres.(x) with
    | Some s -> s
    | None ->
        Obs.incr c_spheres;
        Gaifman.sphere_array ctx.cgf ~rho:ctx.crho x
  in
  match Array.length c with
  | 0 -> [||]
  | 1 -> sphere_of c.(0)
  | _ ->
      let parts = Array.map sphere_of c in
      let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 parts in
      let buf = Array.make total 0 in
      let p = ref 0 in
      Array.iter
        (fun s ->
          Array.blit s 0 buf !p (Array.length s);
          p := !p + Array.length s)
        parts;
      Array.sort icmp buf;
      let w = ref 0 in
      Array.iter
        (fun v ->
          if !w = 0 || buf.(!w - 1) <> v then begin
            buf.(!w) <- v;
            incr w
          end)
        buf;
      Array.sub buf 0 !w

(* Materialize classification data for every tuple: bucket key (cheap
   invariants), certificate, and the {!Iso.prep} reused by every exact
   in-bucket test.  The induced substructure and its Gaifman graph are
   built once per tuple and threaded through all three consumers. *)
let materialize ctx ?jobs tups =
  (* Phase A (parallel): BFS the spheres of elements not yet cached. *)
  if ctx.use_cache then begin
    let n = Structure.size ctx.cg in
    let pending = Array.make n false in
    let missing = ref [] and nmiss = ref 0 and lookups = ref 0 in
    Array.iter
      (fun c ->
        Array.iter
          (fun x ->
            incr lookups;
            if ctx.spheres.(x) = None && not pending.(x) then begin
              pending.(x) <- true;
              missing := x :: !missing;
              incr nmiss
            end)
          c)
      tups;
    let missing = Array.of_list (List.rev !missing) in
    let computed =
      Wm_par.Pool.parallel_map ?jobs
        (fun x -> Gaifman.sphere_array ctx.cgf ~rho:ctx.crho x)
        missing
    in
    Array.iteri (fun i x -> ctx.spheres.(x) <- Some computed.(i)) missing;
    Obs.add c_spheres !nmiss;
    Obs.add c_sphere_hits (!lookups - !nmiss)
  end;
  (* Phase B (sequential, cheap): tuple spheres by union, grouped by
     sphere so the member scan below runs once per distinct sphere. *)
  let sets = Array.map (fun c -> sphere_union ctx c) tups in
  let fresh = ref [] in
  if ctx.use_cache then
    Array.iter
      (fun s ->
        if Hashtbl.mem ctx.groups s then Obs.incr c_subs_deduped
        else begin
          Hashtbl.add ctx.groups s (ref None);
          fresh := s :: !fresh
        end)
      sets;
  (* Phase C (parallel): one member scan per fresh sphere group. *)
  let fresh = Array.of_list (List.rev !fresh) in
  let scanned = Wm_par.Pool.parallel_map ?jobs (fun s -> members_in ctx s) fresh in
  Array.iteri (fun i s -> Hashtbl.find ctx.groups s := Some scanned.(i)) fresh;
  let members_of s =
    if ctx.use_cache then
      match !(Hashtbl.find ctx.groups s) with
      | Some m -> m
      | None -> assert false
    else members_in ctx s
  in
  let nt = Array.length tups in
  (* Phase C' (bounded path): probe each distinct sphere's decomposition
     once (parallel over fresh spheres when the cache is on), then derive
     one canonical code per tuple (parallel) and group equal codes
     (sequential).  grp.(i) is the slot whose materialization slot i
     inherits; leaders have grp.(i) = i. *)
  let grp = Array.init nt (fun i -> i) in
  (match ctx.bound with
   | None -> ()
   | Some bound ->
       Obs.span t_codes @@ fun () ->
       if ctx.use_cache then begin
         let dfresh = ref [] in
         Array.iter
           (fun s ->
             if Hashtbl.mem ctx.decomps s then Obs.incr c_bw_decomp_hits
             else begin
               Hashtbl.add ctx.decomps s (ref None);
               dfresh := s :: !dfresh
             end)
           sets;
         let dfresh = Array.of_list (List.rev !dfresh) in
         (* Rename each fresh sphere and dedup on the injective renamed
            key: equal-key spheres are the same structure up to the
            renaming, so one decomposition probe serves them all.  Only
            distinct shapes reach the (parallel) probe. *)
         let nf = Array.length dfresh in
         let rens =
           Array.map (fun s -> rename_members ctx s (members_of s)) dfresh
         in
         let ktbl = Ktbl.create (max 16 nf) in
         let uid = Array.make nf 0 in
         let uniq = ref [] and nu = ref 0 in
         Array.iteri
           (fun i s ->
             let key = rep_key (Array.length s) rens.(i) in
             match Ktbl.find_opt ktbl key with
             | Some u ->
                 uid.(i) <- u;
                 Obs.incr c_bw_decomp_hits
             | None ->
                 Ktbl.add ktbl key !nu;
                 uid.(i) <- !nu;
                 uniq := i :: !uniq;
                 incr nu)
           dfresh;
         let uniq = Array.of_list (List.rev !uniq) in
         let udinfos =
           Wm_par.Pool.parallel_map ?jobs
             (fun i -> dinfo_of ~bound (Array.length dfresh.(i)) rens.(i))
             uniq
         in
         Array.iter
           (fun di ->
             di.d_id <- ctx.next_did;
             ctx.next_did <- ctx.next_did + 1)
           udinfos;
         Array.iteri
           (fun i s -> Hashtbl.find ctx.decomps s := Some udinfos.(uid.(i)))
           dfresh
       end;
       let codes =
         if not ctx.use_cache then
           Wm_par.Pool.parallel_mapi ?jobs
             (fun i c ->
               if Array.length c = 0 then None
               else begin
                 let s = sets.(i) in
                 let di = build_dinfo ctx s (members_of s) ~bound in
                 if di.d_width > bound then begin
                   Obs.incr c_bw_fallbacks;
                   None
                 end
                 else
                   Some (code_of di (Array.map (fun x -> idx_sorted s x) c))
               end)
             tups
         else begin
           (* Per-tuple codes are a function of (shared dinfo, center
              labels); dedup on that pair so each distinct pointed shape
              is encoded once, then fan the codes back out. *)
           let slot = Array.make nt (-1) in
           let ctbl = Ktbl.create (max 16 nt) in
           let uwork = ref [] and nu = ref 0 in
           Array.iteri
             (fun i c ->
               if Array.length c > 0 then begin
                 let di =
                   match !(Hashtbl.find ctx.decomps sets.(i)) with
                   | Some di -> di
                   | None -> assert false
                 in
                 if di.d_width > bound then Obs.incr c_bw_fallbacks
                 else begin
                   let s = sets.(i) in
                   let cl = Array.map (fun x -> idx_sorted s x) c in
                   let ckey = Array.make (1 + Array.length cl) di.d_id in
                   Array.iteri (fun j v -> ckey.(j + 1) <- v) cl;
                   match Ktbl.find_opt ctbl ckey with
                   | Some u -> slot.(i) <- u
                   | None ->
                       Ktbl.add ctbl ckey !nu;
                       slot.(i) <- !nu;
                       uwork := (di, cl) :: !uwork;
                       incr nu
                 end
               end)
             tups;
           let uwork = Array.of_list (List.rev !uwork) in
           let ucodes =
             Wm_par.Pool.parallel_map ?jobs
               (fun (di, cl) -> code_of di cl)
               uwork
           in
           Array.map
             (fun u -> if u < 0 then None else Some ucodes.(u))
             slot
         end
       in
       let tbl : (int array, int) Hashtbl.t = Hashtbl.create (max 16 nt) in
       Array.iteri
         (fun i code ->
           match code with
           | None -> ()
           | Some cd -> (
               match Hashtbl.find_opt tbl cd with
               | Some l ->
                   grp.(i) <- l;
                   Obs.incr c_bw_bypassed
               | None -> Hashtbl.add tbl cd i))
         codes;
       Obs.add c_bw_groups (Hashtbl.length tbl));
  (* Phase D (parallel): per-leader substructure, sub-Gaifman graph,
     cheap key, certificate, refinement prep.  Group members inherit
     their leader's triple — physically the same prep, so every
     downstream isomorphism answer is the one the leader gets. *)
  let leaders = ref [] in
  Array.iteri (fun i l -> if l = i then leaders := i :: !leaders) grp;
  let leaders = Array.of_list (List.rev !leaders) in
  let schema = Structure.schema ctx.cg in
  let lkeyed =
    Obs.span t_prep @@ fun () ->
    Wm_par.Pool.parallel_map ?jobs
    (fun i ->
      let c = tups.(i) in
      let s = sets.(i) in
      let members = members_of s in
      let k = Array.length s in
      (* Renaming: the tuple's own elements first (stable center ids),
         then the rest of the sphere in ascending order. *)
      let new_id = Hashtbl.create (2 * k) in
      let pos = ref 0 in
      let place x =
        if not (Hashtbl.mem new_id x) then begin
          Hashtbl.add new_id x !pos;
          incr pos
        end
      in
      Array.iter place c;
      Array.iter place s;
      let ren t = Array.map (fun x -> Hashtbl.find new_id x) t in
      let by_rel : (string, Tuple.t list ref) Hashtbl.t = Hashtbl.create 8 in
      let renamed_all = ref [] in
      List.iter
        (fun (name, t) ->
          let rt = ren t in
          renamed_all := rt :: !renamed_all;
          match Hashtbl.find_opt by_rel name with
          | Some l -> l := rt :: !l
          | None -> Hashtbl.add by_rel name (ref [ rt ]))
        members;
      let sub =
        Hashtbl.fold
          (fun name ts acc ->
            let arity = Relation.arity (Structure.relation acc name) in
            Structure.set_relation acc name (Relation.of_list arity !ts))
          by_rel
          (Structure.create schema k)
      in
      let gf_sub = Gaifman.of_tuples ~n:k !renamed_all in
      let center = List.map (Hashtbl.find new_id) (Array.to_list c) in
      let prep = Iso.prep ~gf:gf_sub sub center in
      (* Cheap invariants, deep-hashed: sphere size, member count, degree
         multiset of the sub-Gaifman graph, center equality pattern. *)
      let degs = Gaifman.degrees gf_sub in
      Array.sort icmp degs;
      let h = ref (Iso.mix 0x9e3779b9 k) in
      h := Iso.mix !h (List.length members);
      Array.iter (fun d -> h := Iso.mix !h d) degs;
      List.iter (fun x -> h := Iso.mix !h x) center;
      (!h, Iso.certificate_of_prep prep, prep))
    leaders
  in
  let slot = Array.make nt None in
  Array.iteri (fun j i -> slot.(i) <- Some lkeyed.(j)) leaders;
  let keyed =
    Array.init nt (fun i ->
        match slot.(grp.(i)) with Some k -> k | None -> assert false)
  in
  (keyed, grp)

let distinct_tuples tuples =
  (* first-occurrence order, which fixes the type-id numbering *)
  let seen = ref Tuple.Set.empty in
  List.filter
    (fun c ->
      if Tuple.Set.mem c !seen then false
      else begin
        seen := Tuple.Set.add c !seen;
        true
      end)
    tuples

let run_index ctx ?jobs tups ~rho ~arity =
  let n = Array.length tups in
  Obs.add c_tuples_typed n;
  (* Phase 1 (parallel): materialize every neighborhood's classification
     data through the shared context. *)
  let keyed, grp = Obs.span t_spheres @@ fun () -> materialize ctx ?jobs tups in
  (* Phase 2 (sequential, cheap): group slots into buckets keyed by
     (cheap invariants, certificate), keeping first-seen order both of
     buckets and within each bucket. *)
  let btbl : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let border = ref [] in
  Array.iteri
    (fun i (ck, cert, _) ->
      match Hashtbl.find_opt btbl (ck, cert) with
      | Some slots -> slots := i :: !slots
      | None ->
          Hashtbl.add btbl (ck, cert) (ref [ i ]);
          border := (ck, cert) :: !border)
    keyed;
  let buckets =
    Array.of_list
      (List.rev_map
         (fun k -> Array.of_list (List.rev !(Hashtbl.find btbl k)))
         !border)
  in
  Obs.add c_buckets (Array.length buckets);
  (* Phase 3 (parallel): exact classification inside each bucket.
     Buckets are independent; within one bucket the search is the
     sequential scan against the bucket's representatives.  For each
     slot we record its leader: the slot of the first bucket member it
     is isomorphic to.  Representatives of one bucket are pairwise
     non-isomorphic, so a member matches at most one of them and the
     leader is well defined regardless of search order.  A slot whose
     materialization group leader (grp, bounded path) sits earlier in
     the same bucket — it shares the triple, so it must — copies that
     slot's answer without scanning: its prep is physically the
     leader's, so the scan could only repeat the leader's matches. *)
  let leader = Array.make n (-1) in
  let classified =
    Obs.span t_classify @@ fun () ->
    Wm_par.Pool.parallel_map ?jobs
      (fun slots ->
        let reps = ref [] in
        let local : (int, int) Hashtbl.t = Hashtbl.create 16 in
        let leaders =
          Array.map
            (fun i ->
              let l =
                if grp.(i) <> i then
                  match Hashtbl.find_opt local grp.(i) with
                  | Some l -> l
                  | None -> assert false (* same triple => same bucket *)
                else begin
                  let _, _, prep = keyed.(i) in
                  match
                    List.find_opt (fun (_, rep) -> iso_check prep rep) !reps
                  with
                  | Some (l, _) -> l
                  | None ->
                      reps := (i, prep) :: !reps;
                      i
                end
              in
              Hashtbl.replace local i l;
              l)
            slots
        in
        (leaders, List.length !reps))
      buckets
  in
  Array.iteri
    (fun b slots ->
      Array.iteri (fun k i -> leader.(i) <- (fst classified.(b)).(k)) slots)
    buckets;
  (if Obs.enabled () then
     (* What pre-bucketing saved: a bucket-less scan compares each tuple
        against every representative outside its own bucket as well. *)
     let total_reps =
       Array.fold_left (fun acc (_, r) -> acc + r) 0 classified
     in
     Array.iteri
       (fun b slots ->
         Obs.add c_iso_avoided
           (Array.length slots * (total_reps - snd classified.(b))))
       buckets);
  (* Phase 4 (sequential): number the classes by first occurrence, which
     reproduces the type ids of the plain sequential fold exactly. *)
  Obs.span t_renumber @@ fun () ->
  let ty_of_leader = Hashtbl.create 64 in
  let reps = ref [] in
  let next_ty = ref 0 in
  let types = ref Tuple.Map.empty in
  Array.iteri
    (fun i c ->
      let l = leader.(i) in
      let ty =
        match Hashtbl.find_opt ty_of_leader l with
        | Some ty -> ty
        | None ->
            let ty = !next_ty in
            incr next_ty;
            Hashtbl.add ty_of_leader l ty;
            reps := tups.(l) :: !reps;
            ty
      in
      types := Tuple.Map.add c ty !types)
    tups;
  { rho; arity; types = !types; representatives = Array.of_list (List.rev !reps) }

let index ?(sphere_cache = true) ?jobs ?width_bound g ~rho tuples =
  Obs.span t_index @@ fun () ->
  let bound = resolve_bound width_bound in
  let gf = Gaifman.of_structure g in
  let ctx = make_ctx ~use_cache:sphere_cache ?bound g gf ~rho in
  let tups = Array.of_list (distinct_tuples tuples) in
  let arity = if Array.length tups > 0 then Array.length tups.(0) else 0 in
  run_index ctx ?jobs tups ~rho ~arity

let index_bounded ?sphere_cache ?jobs ~width g ~rho tuples =
  if width < 1 then
    invalid_arg "Neighborhood.index_bounded: width must be >= 1";
  index ?sphere_cache ?jobs ~width_bound:width g ~rho tuples

let index_universe ?sphere_cache ?jobs ?width_bound g ~rho ~arity =
  Obs.span t_index @@ fun () ->
  let bound = resolve_bound width_bound in
  let gf = Gaifman.of_structure g in
  let ctx = make_ctx ?use_cache:sphere_cache ?bound g gf ~rho in
  run_index ctx ?jobs (all_tuples_array g ~arity) ~rho ~arity

let affected_elements ~old_gf ~gf ~rho ~dirty =
  (* Both graphs: an inserted edge shortens distances only in the new graph,
     a deleted one only in the old; a tuple's sphere can change iff one of
     its elements is within rho of a dirty element in either. *)
  List.sort_uniq compare
    (Gaifman.reach old_gf ~sources:dirty ~bound:rho
    @ Gaifman.reach gf ~sources:dirty ~bound:rho)

let reindex ?jobs ?(threshold = 0.5) ?width_bound ~old g ~prev ~dirty =
  Obs.span t_reindex @@ fun () ->
  let bound = resolve_bound width_bound in
  let rho = prev.rho and arity = prev.arity in
  let old_gf = Gaifman.of_structure old in
  let gf = Gaifman.refresh g ~prev:old_gf ~dirty in
  let n = Structure.size g in
  let affected = affected_elements ~old_gf ~gf ~rho ~dirty in
  Obs.add c_affected_elements (List.length affected);
  let in_a = Array.make (max n (Structure.size old)) false in
  List.iter (fun x -> in_a.(x) <- true) affected;
  let a_new = List.length (List.filter (fun x -> x < n) affected) in
  let total = float_of_int n ** float_of_int arity in
  let affected_tuples = total -. (float_of_int (n - a_new) ** float_of_int arity) in
  if total = 0. || affected_tuples > threshold *. total then begin
    Obs.incr c_fallbacks;
    index_universe ?jobs ?width_bound g ~rho ~arity
  end
  else begin
    let ctx = make_ctx ?bound g gf ~rho in
    let touches c = Array.exists (fun x -> in_a.(x)) c in
    (* Anchors: for every old type that still has a member untouched by the
       affected region, any such member — its neighborhood is unchanged, so
       it stands in for the whole class during reclassification.  Old
       classes cannot merge (their untouched members stay non-isomorphic),
       so matching an anchor is unambiguous. *)
    let ntp_old = Array.length prev.representatives in
    let anchor = Array.make ntp_old None in
    Tuple.Map.iter
      (fun c ty ->
        if
          anchor.(ty) = None
          && not (Array.exists (fun x -> x >= n || in_a.(x)) c)
        then anchor.(ty) <- Some c)
      prev.types;
    let anchors =
      let acc = ref [] in
      for ty = ntp_old - 1 downto 0 do
        match anchor.(ty) with
        | Some c -> acc := (ty, c) :: !acc
        | None -> ()
      done;
      Array.of_list !acc
    in
    (* Anchors are one per surviving class, pairwise non-isomorphic, so
       the bounded path's code grouping never merges them — the grp
       component is irrelevant here. *)
    let anchor_keyed, _ = materialize ctx ?jobs (Array.map snd anchors) in
    let atbl : (int * int, (int * Iso.prep) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    Array.iteri
      (fun i (ck, cert, prep) ->
        let ty = fst anchors.(i) in
        match Hashtbl.find_opt atbl (ck, cert) with
        | Some l -> l := (ty, prep) :: !l
        | None -> Hashtbl.add atbl (ck, cert) (ref [ (ty, prep) ]))
      anchor_keyed;
    Obs.add c_anchors (Array.length anchors);
    (* Affected tuples, in enumeration order so numbering below matches the
       from-scratch index; everything else keeps its old class. *)
    let at =
      let acc = ref [] in
      iter_all_tuples g ~arity (fun c -> if touches c then acc := c :: !acc);
      Array.of_list (List.rev !acc)
    in
    Obs.add c_affected_tuples (Array.length at);
    let keyed, grp = materialize ctx ?jobs at in
    let btbl : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let border = ref [] in
    Array.iteri
      (fun i (ck, cert, _) ->
        match Hashtbl.find_opt btbl (ck, cert) with
        | Some slots -> slots := i :: !slots
        | None ->
            Hashtbl.add btbl (ck, cert) (ref [ i ]);
            border := (ck, cert) :: !border)
      keyed;
    let buckets =
      Array.of_list
        (List.rev_map
           (fun k -> (k, Array.of_list (List.rev !(Hashtbl.find btbl k))))
           !border)
    in
    (* Class keys: [0 .. ntp_old-1] are surviving old classes, [ntp_old + i]
       is a fresh class led by affected slot [i].  A fresh leader is not
       isomorphic to any anchor of its bucket, hence to no surviving old
       class; so every tuple matches at most one candidate and the result
       does not depend on how buckets are scheduled. *)
    let classified =
      Wm_par.Pool.parallel_map ?jobs
        (fun (key, slots) ->
          let anchors_here =
            match Hashtbl.find_opt atbl key with
            | Some l -> List.rev !l
            | None -> []
          in
          let reps = ref [] in
          let local : (int, int) Hashtbl.t = Hashtbl.create 16 in
          Array.map
            (fun i ->
              let cls =
                if grp.(i) <> i then
                  (* bounded path: the slot's prep is physically its
                     group leader's, so the scan below would repeat the
                     leader's matches — copy its class. *)
                  match Hashtbl.find_opt local grp.(i) with
                  | Some cls -> cls
                  | None -> assert false (* same triple => same bucket *)
                else begin
                  let _, _, prep = keyed.(i) in
                  let iso (_, r) = iso_check prep r in
                  match List.find_opt iso anchors_here with
                  | Some (ty, _) -> ty
                  | None -> (
                      match List.find_opt iso !reps with
                      | Some (cls, _) -> cls
                      | None ->
                          let cls = ntp_old + i in
                          reps := (cls, prep) :: !reps;
                          cls)
                end
              in
              Hashtbl.replace local i cls;
              cls)
            slots)
        buckets
    in
    let cls = Array.make (Array.length at) (-1) in
    Array.iteri
      (fun b (_, slots) ->
        Array.iteri (fun k i -> cls.(i) <- classified.(b).(k)) slots)
      buckets;
    let cls_of_tuple = Tuple.Hashtbl.create (max 16 (Array.length at)) in
    Array.iteri (fun i c -> Tuple.Hashtbl.replace cls_of_tuple c cls.(i)) at;
    (* Renumber every class by first occurrence over the full enumeration —
       the same sequential pass as the from-scratch phase 4, so type ids and
       representatives come out bit-identical. *)
    let ty_of_cls = Hashtbl.create 64 in
    let reps = ref [] in
    let next_ty = ref 0 in
    let types = ref Tuple.Map.empty in
    iter_all_tuples g ~arity (fun c ->
        let k =
          match Tuple.Hashtbl.find_opt cls_of_tuple c with
          | Some k -> k
          | None -> Tuple.Map.find c prev.types
        in
        let ty =
          match Hashtbl.find_opt ty_of_cls k with
          | Some ty -> ty
          | None ->
              let ty = !next_ty in
              incr next_ty;
              Hashtbl.add ty_of_cls k ty;
              reps := c :: !reps;
              ty
        in
        types := Tuple.Map.add c ty !types);
    { rho; arity; types = !types; representatives = Array.of_list (List.rev !reps) }
  end

let ntp ix = Array.length ix.representatives

let type_of ix c =
  match Tuple.Map.find_opt c ix.types with
  | Some ty -> ty
  | None -> raise Not_found

(* Per-sphere width survey for `wmark info`: the min-degree heuristic
   width of every element's rho-sphere substructure — the exact graphs
   the bounded path probes — so users can pick a --width-bound that
   covers (most of) the instance. *)
let max_sphere_width ?jobs g ~rho =
  let gf = Gaifman.of_structure g in
  let ctx = make_ctx g gf ~rho in
  let n = Structure.size g in
  let widths =
    Wm_par.Pool.parallel_map ?jobs
      (fun x ->
        let s = Gaifman.sphere_array gf ~rho x in
        let members = members_in ctx s in
        let renamed =
          List.map (fun (_, t) -> Array.map (fun y -> idx_sorted s y) t) members
        in
        let gf_s = Gaifman.of_tuples ~n:(Array.length s) renamed in
        Tdecomp.width (Tdecomp.eliminate gf_s))
      (Array.init n (fun x -> x))
  in
  Array.fold_left max 0 widths
