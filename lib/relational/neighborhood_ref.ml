(* The pre-fast-path neighborhood indexer, kept verbatim as an executable
   reference: per-tuple [Structure.induced] over [Gaifman.sphere_tuple]
   (no sphere cache, no member-scan dedupe), three Gaifman-graph
   constructions per tuple, and hashed colour refinement run for
   size-many rounds with [Hashtbl.hash] bucket keys.  It exists so that

   - property tests can assert the fast path is bit-identical to it
     (test_perf.ml), and
   - E23 can measure the speedup against the real old pipeline rather
     than a synthetic stand-in.

   Its observability lives under [nbh.ref.*] so a comparison run can
   diff both pipelines out of one snapshot. *)

module Obs = Wm_obs.Obs

let c_spheres = Obs.counter "nbh.ref.spheres"
let c_tuples_typed = Obs.counter "nbh.ref.tuples_typed"
let c_buckets = Obs.counter "nbh.ref.buckets"
let c_iso_checks = Obs.counter "nbh.ref.iso_checks"
let t_index = Obs.timer "nbh.ref.index"
let t_spheres = Obs.timer "nbh.ref.index.spheres"
let t_classify = Obs.timer "nbh.ref.index.classify"
let t_renumber = Obs.timer "nbh.ref.index.renumber"

(* --- the pre-PR Iso: hashed refinement, hashed certificate ---------- *)

let initial_colors g dist =
  let n = Structure.size g in
  let dist_ix = Array.make n (-1) in
  List.iteri (fun i a -> dist_ix.(a) <- i) dist;
  let incid = Array.make n [] in
  Structure.fold_relations
    (fun name r () ->
      Relation.iter
        (fun t ->
          Array.iteri
            (fun pos a -> incid.(a) <- (name, pos) :: incid.(a))
            t)
        r)
    g ();
  Array.init n (fun a ->
      Hashtbl.hash (dist_ix.(a), List.sort compare incid.(a)))

let refine gf colors =
  let n = Array.length colors in
  Array.init n (fun a ->
      let ns = List.map (fun b -> colors.(b)) (Gaifman.neighbors gf a) in
      Hashtbl.hash (colors.(a), List.sort compare ns))

let stable_colors g dist =
  let gf = Gaifman.of_structure g in
  let n = Structure.size g in
  let rec go colors k =
    if k = 0 then colors
    else
      let colors' = refine gf colors in
      if colors' = colors then colors else go colors' (k - 1)
  in
  go (initial_colors g dist) (max 1 n)

let certificate g dist =
  let colors = stable_colors g dist in
  let census = Array.to_list colors |> List.sort compare in
  let rel_sizes =
    Structure.fold_relations
      (fun name r acc -> (name, Relation.cardinal r) :: acc)
      g []
    |> List.sort compare
  in
  let dist_colors = List.map (fun a -> colors.(a)) dist in
  Hashtbl.hash (Structure.size g, rel_sizes, census, dist_colors)

let isomorphic ga da gb db =
  let n = Structure.size ga in
  if n <> Structure.size gb || List.length da <> List.length db then false
  else begin
    let ca = stable_colors ga da and cb = stable_colors gb db in
    let census c = List.sort compare (Array.to_list c) in
    if census ca <> census cb then false
    else begin
      let rel_names =
        Structure.fold_relations (fun name _ acc -> name :: acc) ga []
      in
      let sizes_ok =
        List.for_all
          (fun name ->
            Relation.cardinal (Structure.relation ga name)
            = Relation.cardinal (Structure.relation gb name))
          rel_names
      in
      if not sizes_ok then false
      else begin
        (* Forced images of distinguished elements; the O(d^2) fold over
           [forced] is part of what the fast path replaced. *)
        let forced = Hashtbl.create 8 in
        let forced_ok =
          List.for_all2
            (fun a b ->
              match Hashtbl.find_opt forced a with
              | Some b' -> b = b'
              | None ->
                  if Hashtbl.fold (fun _ v acc -> acc || v = b) forced false
                  then false
                  else begin
                    Hashtbl.add forced a b;
                    true
                  end)
            da db
        in
        if not forced_ok then false
        else begin
          let map = Array.make n (-1) in
          let used = Array.make n false in
          let order = Array.make n (-1) in
          let pos = ref 0 in
          let placed = Array.make n false in
          List.iter
            (fun a ->
              if not placed.(a) then begin
                order.(!pos) <- a;
                placed.(a) <- true;
                incr pos
              end)
            da;
          let gfa = Gaifman.of_structure ga in
          let queue = Queue.create () in
          List.iter (fun a -> Queue.add a queue) da;
          while not (Queue.is_empty queue) do
            let u = Queue.pop queue in
            List.iter
              (fun v ->
                if not placed.(v) then begin
                  order.(!pos) <- v;
                  placed.(v) <- true;
                  incr pos;
                  Queue.add v queue
                end)
              (Gaifman.neighbors gfa u)
          done;
          for a = 0 to n - 1 do
            if not placed.(a) then begin
              order.(!pos) <- a;
              placed.(a) <- true;
              incr pos
            end
          done;
          let order_ix = Array.make n (-1) in
          Array.iteri (fun i a -> order_ix.(a) <- i) order;
          let tuples_at = Array.make n [] in
          Structure.fold_relations
            (fun name r () ->
              Relation.iter
                (fun t ->
                  let last =
                    Array.fold_left (fun acc x -> max acc order_ix.(x)) (-1) t
                  in
                  tuples_at.(last) <- (name, t) :: tuples_at.(last))
                r)
            ga ();
          let rec extend i =
            if i = n then true
            else
              let a = order.(i) in
              let candidates =
                match Hashtbl.find_opt forced a with
                | Some b -> [ b ]
                | None -> Structure.universe gb
              in
              List.exists
                (fun b ->
                  (not used.(b))
                  && ca.(a) = cb.(b)
                  &&
                  begin
                    map.(a) <- b;
                    used.(b) <- true;
                    let ok =
                      List.for_all
                        (fun (name, t) ->
                          let img = Array.map (fun x -> map.(x)) t in
                          Relation.mem img (Structure.relation gb name))
                        tuples_at.(i)
                    in
                    let ok = ok && extend (i + 1) in
                    if not ok then begin
                      map.(a) <- -1;
                      used.(b) <- false
                    end;
                    ok
                  end)
                candidates
          in
          extend 0
        end
      end
    end
  end

(* --- the pre-PR indexer -------------------------------------------- *)

let iso_check a b =
  Obs.incr c_iso_checks;
  isomorphic a.Neighborhood.sub a.Neighborhood.center b.Neighborhood.sub
    b.Neighborhood.center

let of_tuple g gf ~rho c =
  Obs.incr c_spheres;
  let sphere = Gaifman.sphere_tuple gf ~rho c in
  let sub, original = Structure.induced g (Array.to_list c @ sphere) in
  let new_id = Hashtbl.create 16 in
  Array.iteri (fun nw old -> Hashtbl.replace new_id old nw) original;
  let center = List.map (Hashtbl.find new_id) (Array.to_list c) in
  { Neighborhood.sub; center; original }

(* Cons-list enumeration of U^arity — materializes all n^arity tuples. *)
let all_tuples g ~arity =
  let n = Structure.size g in
  let rec go k acc =
    if k = 0 then acc
    else
      go (k - 1)
        (List.concat_map (fun rest -> List.init n (fun x -> x :: rest)) acc)
  in
  List.map Tuple.of_list (go arity [ [] ])

(* [Hashtbl.hash] of the whole invariant tuple — samples ~10 nodes, so
   long degree lists collide (the weakness satellite (a) fixed). *)
let cheap_invariants nb =
  let gf = Gaifman.of_structure nb.Neighborhood.sub in
  let degrees =
    List.sort compare
      (List.map (Gaifman.degree gf) (Structure.universe nb.Neighborhood.sub))
  in
  Hashtbl.hash
    ( Structure.size nb.Neighborhood.sub,
      Structure.tuples_count nb.Neighborhood.sub,
      degrees,
      nb.Neighborhood.center )

let distinct_tuples tuples =
  let seen = ref Tuple.Set.empty in
  List.filter
    (fun c ->
      if Tuple.Set.mem c !seen then false
      else begin
        seen := Tuple.Set.add c !seen;
        true
      end)
    tuples

let index ?jobs g ~rho tuples =
  Obs.span t_index @@ fun () ->
  let gf = Gaifman.of_structure g in
  let tups = Array.of_list (distinct_tuples tuples) in
  let n = Array.length tups in
  let arity = if n > 0 then Array.length tups.(0) else 0 in
  Obs.add c_tuples_typed n;
  let keyed =
    Obs.span t_spheres @@ fun () ->
    Wm_par.Pool.parallel_map ?jobs
      (fun c ->
        let nb = of_tuple g gf ~rho c in
        (nb, cheap_invariants nb, certificate nb.Neighborhood.sub nb.Neighborhood.center))
      tups
  in
  let btbl : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let border = ref [] in
  Array.iteri
    (fun i (_, ck, cert) ->
      match Hashtbl.find_opt btbl (ck, cert) with
      | Some slots -> slots := i :: !slots
      | None ->
          Hashtbl.add btbl (ck, cert) (ref [ i ]);
          border := (ck, cert) :: !border)
    keyed;
  let buckets =
    Array.of_list
      (List.rev_map
         (fun k -> Array.of_list (List.rev !(Hashtbl.find btbl k)))
         !border)
  in
  Obs.add c_buckets (Array.length buckets);
  let leader = Array.make n (-1) in
  let classified =
    Obs.span t_classify @@ fun () ->
    Wm_par.Pool.parallel_map ?jobs
      (fun slots ->
        let reps = ref [] in
        let leaders =
          Array.map
            (fun i ->
              let nb, _, _ = keyed.(i) in
              match List.find_opt (fun (_, rep) -> iso_check nb rep) !reps with
              | Some (l, _) -> l
              | None ->
                  reps := (i, nb) :: !reps;
                  i)
            slots
        in
        leaders)
      buckets
  in
  Array.iteri
    (fun b slots -> Array.iteri (fun k i -> leader.(i) <- classified.(b).(k)) slots)
    buckets;
  Obs.span t_renumber @@ fun () ->
  let ty_of_leader = Hashtbl.create 64 in
  let reps = ref [] in
  let next_ty = ref 0 in
  let types = ref Tuple.Map.empty in
  Array.iteri
    (fun i c ->
      let l = leader.(i) in
      let ty =
        match Hashtbl.find_opt ty_of_leader l with
        | Some ty -> ty
        | None ->
            let ty = !next_ty in
            incr next_ty;
            Hashtbl.add ty_of_leader l ty;
            reps := tups.(l) :: !reps;
            ty
      in
      types := Tuple.Map.add c ty !types)
    tups;
  {
    Neighborhood.rho;
    arity;
    types = !types;
    representatives = Array.of_list (List.rev !reps);
  }

let index_universe ?jobs g ~rho ~arity =
  { (index ?jobs g ~rho (all_tuples g ~arity)) with Neighborhood.arity }
