(* The pre-flat weight-assignment representation (balanced map keyed by
   boxed tuples), frozen as the equivalence reference for the columnar
   [Weighted] (DESIGN.md 5.12).  Only the assignment part is kept — the
   weighted-structure pairing lives with the live module.

   One deliberate deviation from the PR 7 code: [local_distance] here
   carries the same semantic bugfix as the live module (the |default -
   default'| term for tuples outside both supports), so the equivalence
   suite pins representation changes and the fix at once. *)

type t = { arity : int; default : int; entries : int Tuple.Map.t }

let create ?(default = 0) arity =
  if arity < 1 then invalid_arg "Weighted.create: arity < 1";
  { arity; default; entries = Tuple.Map.empty }

let arity w = w.arity
let default w = w.default

let get w t =
  match Tuple.Map.find_opt t w.entries with
  | Some v -> v
  | None -> w.default

let set w t v =
  if Tuple.arity t <> w.arity then invalid_arg "Weighted.set: arity mismatch";
  { w with entries = Tuple.Map.add t v w.entries }

let set_elt w x v = set w (Tuple.singleton x) v
let get_elt w x = get w (Tuple.singleton x)

let of_list ?(default = 0) arity l =
  List.fold_left (fun w (t, v) -> set w t v) (create ~default arity) l

let bindings w = Tuple.Map.bindings w.entries

let support w = List.map fst (bindings w)

let add_delta w t d = set w t (get w t + d)

let apply_marks w marks =
  List.fold_left (fun w (t, d) -> add_delta w t d) w marks

let union_support a b =
  Tuple.Set.union
    (Tuple.Set.of_list (support a))
    (Tuple.Set.of_list (support b))

let local_distance a b =
  if a.arity <> b.arity then invalid_arg "Weighted.local_distance: arity";
  Tuple.Set.fold
    (fun t acc -> max acc (abs (get a t - get b t)))
    (union_support a b)
    (abs (a.default - b.default))

let is_local_distortion ~c a b = local_distance a b <= c

let equal a b =
  a.arity = b.arity && local_distance a b = 0 && a.default = b.default

let pp fmt w =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (t, v) -> Format.fprintf fmt "W%a = %d@," Tuple.pp t v)
    (bindings w);
  Format.fprintf fmt "@]"
