(** A reusable fixed-size domain pool with deterministic combinators.

    Every hot path of the system — neighborhood typing, carrier
    evaluation, the attack grid, the experiment harness — is per-item
    local work over an array whose items never communicate.  This module
    runs such loops on a pool of OCaml 5 domains while keeping one hard
    contract:

    {b Determinism.}  For every combinator, the result is bit-identical
    to the plain sequential loop, for every job count.  [parallel_map]
    and [parallel_mapi] write each slot of the output exactly where the
    sequential [Array.map] would; [parallel_reduce] evaluates the [map]
    step in parallel but folds [combine] over the mapped values strictly
    in index order, so [combine] needs no associativity or
    commutativity.  [jobs:1] bypasses the pool entirely and runs the
    ordinary sequential code — it is the reference semantics, and larger
    job counts are only allowed to be faster, never different.

    The pool is spawned once, on first use, and fed through a work
    queue; callers block until their batch completes, helping with
    queued work while they wait (so nested parallel sections cannot
    deadlock).  A task that raises does not wedge the pool: the first
    exception of a batch is re-raised in the caller once the batch has
    drained, and the workers survive for the next batch.

    Job count resolution, in priority order: the [?jobs] argument, then
    {!set_jobs} (the [--jobs] CLI flag), then the [WMARK_JOBS]
    environment variable, then [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** [WMARK_JOBS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()].  A set-but-rejected value is
    reported once on stderr at startup rather than ignored silently. *)

val set_jobs : int option -> unit
(** Process-wide override (the [--jobs] flag); [None] restores the
    environment/hardware default.  Values below 1 are clamped to 1. *)

val jobs : unit -> int
(** The effective job count used when a combinator gets no [?jobs]. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f a] is [Array.map f a], computed on up to [jobs]
    domains.  [f] must be safe to call from several domains at once on
    distinct elements (pure functions over immutable data are). *)

val parallel_mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [Array.mapi] under the same contract. *)

val parallel_reduce :
  ?jobs:int ->
  map:('a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** [parallel_reduce ~map ~combine ~init a] equals
    [Array.fold_left (fun acc x -> combine acc (map x)) init a]:
    the [map] stage runs on the pool, the fold is sequential in index
    order, so the result is independent of the job count even for
    non-associative [combine]. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map] via {!parallel_map}; order preserved. *)

val pool_size : unit -> int
(** Number of runners (worker domains + the calling domain) the pool
    can bring to bear; 1 when no pool has been spawned yet.  The pool
    grows on demand: a combinator asked for more jobs than there are
    runners spawns the missing domains first, so a [set_jobs] above the
    first-call size is honored rather than clamped. *)
