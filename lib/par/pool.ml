(* A fixed-size domain pool behind deterministic combinators.

   Determinism is structural, not scheduled: every combinator writes each
   output slot exactly where the sequential loop would, and any
   cross-slot combination happens sequentially in index order after the
   parallel phase.  The job count therefore only decides how the index
   range is chunked over domains, never what is computed. *)

(* Observability (DESIGN.md 5.8): how much work the pool moved, how much
   of it the callers stole back while waiting, and how long batch owners
   sat in Condition.wait.  All no-ops unless Wm_obs.Obs is enabled. *)
module Obs = Wm_obs.Obs

let c_tasks_enqueued = Obs.counter "pool.tasks_enqueued"
let c_tasks_helped = Obs.counter "pool.tasks_helped"
let c_batches = Obs.counter "pool.batches"
let c_domains_spawned = Obs.counter "pool.domains_spawned"
let t_batch_wait = Obs.timer "pool.batch_wait"

(* ------------------------------------------------------------------ *)
(* Job-count resolution: ?jobs argument > set_jobs > WMARK_JOBS > hw. *)

let override : int option Atomic.t = Atomic.make None

(* Parsed once at module initialization (single-threaded), so a mis-set
   CI environment gets exactly one warning instead of silence — or one
   warning per [jobs ()] call. *)
let env_jobs =
  match Sys.getenv_opt "WMARK_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ ->
          Printf.eprintf
            "wmark: ignoring WMARK_JOBS=%s (not a positive integer), using \
             the hardware default of %d\n\
             %!"
            (Filename.quote s)
            (Domain.recommended_domain_count ());
          None)

let default_jobs () =
  match env_jobs with
  | Some j -> j
  | None -> Domain.recommended_domain_count ()

let set_jobs = function
  | None -> Atomic.set override None
  | Some j -> Atomic.set override (Some (max 1 j))

let jobs () =
  match Atomic.get override with Some j -> j | None -> default_jobs ()

(* ------------------------------------------------------------------ *)
(* The pool: worker domains blocked on one shared queue.  Spawned once,
   at the first parallel call; sized then so later calls asking for more
   jobs than the machine advertises (the E20 sweep on a small box) still
   get dedicated runners. *)

type task = unit -> unit

type pool = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable runners : int;  (* worker domains + the calling domain *)
}

let rec worker_loop p =
  Mutex.lock p.m;
  while Queue.is_empty p.queue && not p.stop do
    Condition.wait p.nonempty p.m
  done;
  if Queue.is_empty p.queue then Mutex.unlock p.m (* stop, queue drained *)
  else begin
    let t = Queue.pop p.queue in
    Mutex.unlock p.m;
    t ();
    worker_loop p
  end

let try_pop p =
  Mutex.lock p.m;
  let r = if Queue.is_empty p.queue then None else Some (Queue.pop p.queue) in
  Mutex.unlock p.m;
  r

let shutdown p =
  Mutex.lock p.m;
  p.stop <- true;
  Condition.broadcast p.nonempty;
  Mutex.unlock p.m;
  List.iter Domain.join p.domains;
  p.domains <- []

let the_pool : pool option ref = ref None
let spawn_mutex = Mutex.create ()

(* [get_pool ~want] returns the shared pool, grown to at least [want]
   runners: a later [set_jobs]/[--jobs] above the first-call size spawns
   the missing worker domains (under [spawn_mutex]) instead of being
   silently clamped.  The pool never shrinks — fewer jobs just chunk the
   index range over fewer tasks. *)
let get_pool ~want () =
  Mutex.lock spawn_mutex;
  let p =
    match !the_pool with
    | Some p -> p
    | None ->
        let runners = max 4 (jobs ()) in
        let p =
          {
            m = Mutex.create ();
            nonempty = Condition.create ();
            queue = Queue.create ();
            stop = false;
            domains = [];
            runners;
          }
        in
        p.domains <-
          List.init (runners - 1) (fun _ -> Domain.spawn (fun () -> worker_loop p));
        Obs.add c_domains_spawned (runners - 1);
        at_exit (fun () -> shutdown p);
        the_pool := Some p;
        p
  in
  if want > p.runners then begin
    p.domains <-
      List.init (want - p.runners) (fun _ ->
          Domain.spawn (fun () -> worker_loop p))
      @ p.domains;
    Obs.add c_domains_spawned (want - p.runners);
    p.runners <- want
  end;
  Mutex.unlock spawn_mutex;
  p

let pool_size () = match !the_pool with Some p -> p.runners | None -> 1

(* ------------------------------------------------------------------ *)
(* Batches: enqueue wrapped tasks, help while waiting, re-raise the
   first failure once everything has drained.  Tasks swallow their own
   exceptions into the batch record, so a raising task can never take a
   worker down or leave the queue wedged. *)

type batch = {
  bm : Mutex.t;
  bdone : Condition.t;
  mutable remaining : int;
  mutable first_exn : (exn * Printexc.raw_backtrace) option;
}

let run_tasks p (tasks : task array) =
  let b =
    {
      bm = Mutex.create ();
      bdone = Condition.create ();
      remaining = Array.length tasks;
      first_exn = None;
    }
  in
  let wrap t () =
    let failure =
      try
        t ();
        None
      with e -> Some (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock b.bm;
    (match (failure, b.first_exn) with
    | Some f, None -> b.first_exn <- Some f
    | _ -> ());
    b.remaining <- b.remaining - 1;
    if b.remaining = 0 then Condition.broadcast b.bdone;
    Mutex.unlock b.bm
  in
  Mutex.lock p.m;
  Array.iter (fun t -> Queue.push (wrap t) p.queue) tasks;
  Condition.broadcast p.nonempty;
  Mutex.unlock p.m;
  Obs.incr c_batches;
  Obs.add c_tasks_enqueued (Array.length tasks);
  (* Help: the caller is a runner too.  It may execute tasks of other
     in-flight batches (nested sections); wrapped tasks never raise, so
     helping is exception-free. *)
  let rec help () =
    match try_pop p with
    | Some t ->
        Obs.incr c_tasks_helped;
        t ();
        help ()
    | None -> ()
  in
  help ();
  Obs.time t_batch_wait (fun () ->
      Mutex.lock b.bm;
      while b.remaining > 0 do
        Condition.wait b.bdone b.bm
      done;
      Mutex.unlock b.bm);
  match b.first_exn with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* [run_indices j body n]: body i for every i in [0, n), chunked over up
   to [j] runners.  Chunks are contiguous index ranges, so each slot is
   written exactly once, by exactly one task. *)
let run_indices j body n =
  if j <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      body i
    done
  else begin
    let p = get_pool ~want:j () in
    let nchunks = max 1 (min n (j * 8)) in
    let tasks =
      Array.init nchunks (fun c ->
          let lo = c * n / nchunks and hi = ((c + 1) * n / nchunks) - 1 in
          fun () ->
            for i = lo to hi do
              body i
            done)
    in
    run_tasks p tasks
  end

(* ------------------------------------------------------------------ *)
(* Combinators *)

let resolve = function Some j -> max 1 j | None -> jobs ()

let parallel_mapi ?jobs f a =
  let j = resolve jobs in
  let n = Array.length a in
  if j <= 1 || n <= 1 then Array.mapi f a
  else begin
    let out = Array.make n None in
    run_indices j (fun i -> out.(i) <- Some (f i a.(i))) n;
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map ?jobs f a = parallel_mapi ?jobs (fun _ x -> f x) a

let parallel_reduce ?jobs ~map ~combine ~init a =
  (* map in parallel, fold sequentially in index order: bit-identical to
     [Array.fold_left (fun acc x -> combine acc (map x)) init a] without
     requiring [combine] to be associative. *)
  Array.fold_left combine init (parallel_map ?jobs map a)

let map_list ?jobs f l = Array.to_list (parallel_map ?jobs f (Array.of_list l))
