(* The neighborhood fast path (DESIGN.md 5.9): shared sphere cache,
   member-scan dedupe, CSR adjacency and exact partition refinement must
   be pure speedups — bit-identical to the preserved pre-fast-path
   pipeline (Neighborhood_ref) for any structure, tuple set, job count
   and cache setting. *)

open Wm_util

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let equal_index (a : Neighborhood.index) (b : Neighborhood.index) =
  a.rho = b.rho && a.arity = b.arity
  && Tuple.Map.equal Int.equal a.types b.types
  && a.representatives = b.representatives

let random_graph g =
  let n = 4 + Prng.int g 10 in
  let edges = 1 + Prng.int g (2 * n) in
  (Wm_workload.Random_struct.graph g ~n ~max_degree:4 ~edges).Weighted.graph

(* --- fast path == reference, universe and explicit tuple lists ------- *)

let prop_universe_matches_ref =
  QCheck.Test.make ~count:40 ~name:"index_universe == reference pipeline"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create (0x5EED + seed) in
      let base = random_graph g in
      let rho = Prng.int g 3 in
      let arity = 1 + Prng.int g 2 in
      equal_index
        (Neighborhood.index_universe base ~rho ~arity)
        (Neighborhood_ref.index_universe base ~rho ~arity))

let prop_list_matches_ref =
  (* explicit tuple lists, duplicates included: the fast path must dedupe
     and number types exactly like the reference *)
  QCheck.Test.make ~count:40 ~name:"index (tuple list) == reference pipeline"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create (0x715 + seed) in
      let base = random_graph g in
      let n = Structure.size base in
      let rho = Prng.int g 3 in
      let arity = 1 + Prng.int g 2 in
      let tuples =
        List.init
          (1 + Prng.int g (3 * n))
          (fun _ -> Tuple.of_list (List.init arity (fun _ -> Prng.int g n)))
      in
      equal_index
        (Neighborhood.index base ~rho tuples)
        (Neighborhood_ref.index base ~rho tuples))

let prop_cache_off_identity =
  QCheck.Test.make ~count:40 ~name:"sphere cache on/off is bit-identical"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create (0xCAC4E + seed) in
      let base = random_graph g in
      let rho = Prng.int g 3 in
      let arity = 1 + Prng.int g 2 in
      equal_index
        (Neighborhood.index_universe ~sphere_cache:false base ~rho ~arity)
        (Neighborhood.index_universe base ~rho ~arity))

let prop_jobs_independent =
  QCheck.Test.make ~count:20 ~name:"fast path is job-count independent"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create (0x90B5 + seed) in
      let base = random_graph g in
      let rho = 1 + Prng.int g 2 in
      equal_index
        (Neighborhood.index_universe ~jobs:1 base ~rho ~arity:2)
        (Neighborhood.index_universe ~jobs:2 base ~rho ~arity:2))

(* --- reindex over edit scripts == reference from scratch ------------- *)

let random_script g base steps =
  let cur = ref base in
  let script = ref [] in
  for _ = 1 to steps do
    let size = Structure.size !cur in
    let edit =
      match Prng.int g 5 with
      | 0 | 1 ->
          Structure.Insert_tuple
            ("E", Tuple.pair (Prng.int g size) (Prng.int g size))
      | 2 -> (
          match Relation.to_list (Structure.relation !cur "E") with
          | [] ->
              Structure.Insert_tuple
                ("E", Tuple.pair (Prng.int g size) (Prng.int g size))
          | ts ->
              Structure.Delete_tuple
                ("E", List.nth ts (Prng.int g (List.length ts))))
      | 3 -> Structure.Add_element None
      | _ ->
          if size > 2 then Structure.Remove_element (size - 1)
          else Structure.Add_element None
    in
    let cur', _ = Structure.apply_edit !cur edit in
    cur := cur';
    script := edit :: !script
  done;
  List.rev !script

let prop_reindex_matches_ref =
  (* incremental fast path against the reference pipeline from scratch:
     crosses the anchor/splice logic with the old implementation *)
  QCheck.Test.make ~count:30 ~name:"reindex == reference from scratch"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create (0x2E1D + seed) in
      let base = random_graph g in
      let rho = Prng.int g 3 in
      let arity = 1 + Prng.int g 2 in
      let prev = Neighborhood.index_universe base ~rho ~arity in
      let script = random_script g base (1 + Prng.int g 5) in
      let edited, dirty = Structure.apply_edits base script in
      let inc = Neighborhood.reindex ~threshold:2.0 ~old:base edited ~prev ~dirty in
      equal_index inc (Neighborhood_ref.index_universe edited ~rho ~arity))

(* --- certificates ----------------------------------------------------- *)

let prop_certificate_gf_invariant =
  (* supplying the precomputed Gaifman graph (the fast path does) never
     changes the certificate, and preps agree with the one-shot API *)
  QCheck.Test.make ~count:40 ~name:"certificate invariant under ?gf"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create (0xCE27 + seed) in
      let base = random_graph g in
      let gf = Gaifman.of_structure base in
      let n = Structure.size base in
      let c = Tuple.pair (Prng.int g n) (Prng.int g n) in
      let nb = Neighborhood.of_tuple base gf ~rho:1 c in
      let gf_sub = Gaifman.of_structure nb.Neighborhood.sub in
      let plain = Iso.certificate nb.Neighborhood.sub nb.Neighborhood.center in
      plain = Iso.certificate ~gf:gf_sub nb.Neighborhood.sub nb.Neighborhood.center
      && plain
         = Iso.certificate_of_prep
             (Iso.prep ~gf:gf_sub nb.Neighborhood.sub nb.Neighborhood.center))

(* --- CSR adjacency ---------------------------------------------------- *)

let prop_of_tuples_matches_of_structure =
  QCheck.Test.make ~count:40 ~name:"Gaifman.of_tuples == of_structure"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create (0xC52 + seed) in
      let base = random_graph g in
      let n = Structure.size base in
      let tuples =
        Structure.fold_relations
          (fun _ r acc -> Relation.fold (fun t acc -> t :: acc) r acc)
          base []
      in
      let a = Gaifman.of_structure base in
      let b = Gaifman.of_tuples ~n tuples in
      Gaifman.size a = Gaifman.size b
      && List.for_all
           (fun x -> Gaifman.neighbors a x = Gaifman.neighbors b x)
           (Structure.universe base))

(* --- streaming enumeration -------------------------------------------- *)

let cons_list_all_tuples n arity =
  (* the original n^arity construction, verbatim *)
  let rec go k acc =
    if k = 0 then acc
    else
      go (k - 1)
        (List.concat_map (fun rest -> List.init n (fun x -> x :: rest)) acc)
  in
  List.map Tuple.of_list (go arity [ [] ])

let test_all_tuples_order () =
  List.iter
    (fun (n, arity) ->
      let g = Structure.create Schema.graph n in
      check bool
        (Printf.sprintf "n=%d arity=%d" n arity)
        true
        (Neighborhood.all_tuples g ~arity = cons_list_all_tuples n arity))
    [ (1, 0); (4, 0); (3, 1); (4, 2); (3, 3); (2, 4) ]

(* --- observability of the fast path ----------------------------------- *)

let counter_of snap name =
  match List.assoc_opt name snap.Wm_obs.Obs.counters with
  | Some v -> v
  | None -> 0

let with_stats f =
  let was = Wm_obs.Obs.enabled () in
  Wm_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Wm_obs.Obs.set_enabled was) f

let test_cache_counters () =
  with_stats @@ fun () ->
  let g = Prng.create 0xFA57 in
  let base =
    (Wm_workload.Random_struct.graph g ~n:24 ~max_degree:4 ~edges:40)
      .Weighted.graph
  in
  let n = Structure.size base in
  let before = Wm_obs.Obs.snapshot () in
  ignore (Neighborhood.index_universe base ~rho:2 ~arity:2);
  let d = Wm_obs.Obs.diff ~since:before (Wm_obs.Obs.snapshot ()) in
  (* every element's sphere is extracted by BFS exactly once ... *)
  check int "spheres = one BFS per element" n (counter_of d "nbh.spheres");
  (* ... every further lookup hits the cache (2 lookups per tuple, n^2
     tuples, n misses) *)
  check int "cache hits" ((2 * n * n) - n) (counter_of d "nbh.sphere_cache_hits");
  check bool "member scans deduped" true (counter_of d "nbh.subs_deduped" > 0);
  check bool "refinement rounds counted" true
    (counter_of d "nbh.refine_rounds" > 0)

let test_iso_checks_no_worse_than_ref () =
  (* satellite (a): deep bucket keys may not do more exact isomorphism
     tests than the reference's Hashtbl.hash keys *)
  with_stats @@ fun () ->
  let g = Prng.create 41 in
  let base =
    (Wm_workload.Random_struct.graph g ~n:80 ~max_degree:5 ~edges:150)
      .Weighted.graph
  in
  let before = Wm_obs.Obs.snapshot () in
  let ix = Neighborhood.index_universe base ~rho:2 ~arity:1 in
  let mid = Wm_obs.Obs.snapshot () in
  let ix_ref = Neighborhood_ref.index_universe base ~rho:2 ~arity:1 in
  let after = Wm_obs.Obs.snapshot () in
  check bool "same result" true (equal_index ix ix_ref);
  let fast = counter_of (Wm_obs.Obs.diff ~since:before mid) "nbh.iso_checks" in
  let slow = counter_of (Wm_obs.Obs.diff ~since:mid after) "nbh.ref.iso_checks" in
  check bool
    (Printf.sprintf "fast %d <= ref %d" fast slow)
    true (fast <= slow)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_universe_matches_ref;
    QCheck_alcotest.to_alcotest prop_list_matches_ref;
    QCheck_alcotest.to_alcotest prop_cache_off_identity;
    QCheck_alcotest.to_alcotest prop_jobs_independent;
    QCheck_alcotest.to_alcotest prop_reindex_matches_ref;
    QCheck_alcotest.to_alcotest prop_certificate_gf_invariant;
    QCheck_alcotest.to_alcotest prop_of_tuples_matches_of_structure;
    Alcotest.test_case "all_tuples order" `Quick test_all_tuples_order;
    Alcotest.test_case "fast-path cache counters" `Quick test_cache_counters;
    Alcotest.test_case "iso checks <= reference" `Quick
      test_iso_checks_no_worse_than_ref;
  ]
