(* Fuzzing the total input APIs: Textio.of_string_result and
   Xml.parse_result must map EVERY input — truncated, bit-flipped, spliced
   — to Ok or Error, never to an escaping exception.  Plus the name
   round-trip guarantee of the Textio escaping. *)

let check = Alcotest.check
let bool = Alcotest.bool
let string = Alcotest.string
let int = Alcotest.int
let _ = (bool, string, int)

(* --- deterministic mutation of a valid input ------------------------- *)

let mutate g s =
  let n = String.length s in
  match Prng.int g 5 with
  | 0 -> String.sub s 0 (Prng.int g (n + 1)) (* truncate *)
  | 1 ->
      (* flip one byte to a random printable-ish character *)
      if n = 0 then s
      else begin
        let b = Bytes.of_string s in
        Bytes.set b (Prng.int g n) (Char.chr (32 + Prng.int g 96));
        Bytes.to_string b
      end
  | 2 ->
      (* splice a chunk of the input into itself *)
      if n < 2 then s
      else
        let i = Prng.int g n and j = Prng.int g n in
        String.sub s 0 i ^ String.sub s j (n - j)
  | 3 ->
      (* insert junk *)
      let i = Prng.int g (n + 1) in
      let junk =
        [| "\x00"; "%"; "&badent;"; "<"; "schema"; "-999999999999999999999";
           "rel X"; "</"; "9 9 9 9"; "\xff\xfe" |]
      in
      String.sub s 0 i ^ Prng.choose g junk ^ String.sub s i (n - i)
  | _ ->
      (* duplicate a line *)
      let lines = String.split_on_char '\n' s in
      let k = List.length lines in
      if k = 0 then s
      else
        let d = Prng.int g k in
        String.concat "\n"
          (List.concat (List.mapi (fun i l -> if i = d then [ l; l ] else [ l ]) lines))

(* --- Textio ---------------------------------------------------------- *)

let valid_textio =
  lazy
    (Textio.to_string
       (Wm_workload.Random_struct.travel (Prng.create 1) ~travels:8
          ~transports:20))

let test_textio_fuzz () =
  let g = Prng.create 0xF022 in
  let base = Lazy.force valid_textio in
  for _ = 1 to 60 do
    let input = mutate g base in
    match Textio.of_string_result input with
    | Ok _ | Error _ -> ()
    (* any exception escaping of_string_result fails the test run *)
  done

let malformed_textio =
  [
    "";
    "schema";
    "schema Route";
    "schema Route/x";
    "schema Route/2\nsize -5";
    "schema Route/2\nsize 3\nrel Route 0";
    "schema Route/2\nsize 3\nrel Route 0 9";
    "schema Route/2\nsize 3\nrel Nope 0 1";
    "schema Route/2\nsize 3\nweight";
    "schema Route/2\nsize 3\nweight 0 x";
    "schema Route/2\nsize 3\nname 99 far away";
    "schema Route/2\nsize 3\nbogus directive";
    "size 3";
    "schema Route/2";
    "schema Route/2\nweight_arity 0\nsize 3";
  ]

let test_textio_malformed_are_errors () =
  List.iter
    (fun input ->
      match Textio.of_string_result input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" input)
    malformed_textio

let test_textio_error_lines () =
  (* The error points at the offending line. *)
  match Textio.of_string_result "schema Route/2\nsize 3\nrel Route 0 9\n" with
  | Error e -> check int "line of the bad tuple" 3 e.Textio.line
  | Ok _ -> Alcotest.fail "accepted an out-of-range tuple"

let test_textio_exception_api_delegates () =
  match Textio.of_string "schema Route/2\nsize 3\nrel Route 0 9\n" with
  | exception Textio.Format_error m ->
      check bool "message carries the line" true
        (String.length m >= 6 && String.sub m 0 6 = "line 3")
  | _ -> Alcotest.fail "expected Format_error"

(* Names that exercise every escape: '#', '%', tabs, newlines, leading/
   trailing/doubled spaces — all must survive a write/parse cycle. *)
let test_textio_name_roundtrip () =
  let names =
    [| "plain"; "with#hash"; " lead"; "trail "; "two  spaces"; "pct%20";
       "tab\there"; "new\nline"; "%"; " "; "a # b % c" |]
  in
  let schema = Schema.make ~weight_arity:1 [ { Schema.name = "E"; arity = 2 } ] in
  let g = Structure.create ~names schema (Array.length names) in
  let g = Structure.add_tuple g "E" (Tuple.of_list [ 0; 1 ]) in
  let w =
    List.fold_left
      (fun w x -> Weighted.set w (Tuple.singleton x) (10 + x))
      (Weighted.create 1)
      (Structure.universe g)
  in
  let ws = Weighted.make g w in
  match Textio.of_string_result (Textio.to_string ws) with
  | Error e -> Alcotest.failf "round-trip rejected: %s" (Textio.error_to_string e)
  | Ok ws' ->
      Array.iteri
        (fun x n ->
          check string
            (Printf.sprintf "name %d" x)
            n
            (Structure.name_of ws'.Weighted.graph x))
        names;
      check bool "weights survive" true
        (Weighted.equal ws.Weighted.weights ws'.Weighted.weights)

(* A valid file still parses after a to_string/of_string/to_string cycle:
   the fuzz mutations above must not be the only guarantee. *)
let test_textio_roundtrip_stable () =
  let base = Lazy.force valid_textio in
  match Textio.of_string_result base with
  | Error e -> Alcotest.failf "valid input rejected: %s" (Textio.error_to_string e)
  | Ok ws -> check string "fixpoint" base (Textio.to_string ws)

(* --- edit scripts ----------------------------------------------------- *)

let test_edit_script_roundtrip () =
  let script =
    [
      Structure.Insert_tuple ("Route", Tuple.of_list [ 0; 3 ]);
      Structure.Delete_tuple ("Timetable", Tuple.of_list [ 3; 9; 10; 15 ]);
      Structure.Add_element None;
      Structure.Add_element (Some "with#hash and  spaces ");
      Structure.Remove_element 17;
    ]
  in
  match Textio.edits_of_string_result (Textio.edits_to_string script) with
  | Error e -> Alcotest.failf "round-trip rejected: %s" (Textio.error_to_string e)
  | Ok script' -> check bool "identical" true (script = script')

let test_edit_script_malformed () =
  (match Textio.edits_of_string_result "insert Route 0 1\nfrobnicate 2\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> check int "line" 2 e.Textio.line);
  (match Textio.edits_of_string_result "remove not_an_int\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ());
  (* insert/delete with no elements are malformed, not nullary tuples *)
  match Textio.edits_of_string_result "insert Route\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ()

(* --- XML ------------------------------------------------------------- *)

let valid_xml =
  lazy
    (Wm_xml.Xml.to_string
       (Wm_xml.Utree.to_xml
          (Wm_workload.School_xml.generate (Prng.create 2) ~students:6 ())))

let test_xml_fuzz () =
  let g = Prng.create 0xF033 in
  let base = Lazy.force valid_xml in
  for _ = 1 to 60 do
    let input = mutate g base in
    match Wm_xml.Xml.parse_result input with Ok _ | Error _ -> ()
  done

let malformed_xml =
  [
    "";
    "just text";
    "<";
    "<a";
    "<a>";
    "</a>";
    "<a></b>";
    "<a><b></a></b>";
    "<a b=></a>";
    "<a b='x></a>";
    "<a>&bogus;</a>";
    "<a>&unterminated</a>";
    "<a/><b/>";
    "<!-- unterminated";
    "<?pi unterminated";
    "<a>text</a> trailing";
  ]

let test_xml_malformed_are_errors () =
  List.iter
    (fun input ->
      match Wm_xml.Xml.parse_result input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed XML %S" input)
    malformed_xml

let test_xml_error_positions () =
  match Wm_xml.Xml.parse_result "<a>\n  <b>\n</a>" with
  | Error e ->
      check bool "line past the opening tag" true (e.Wm_xml.Xml.line >= 2)
  | Ok _ -> Alcotest.fail "accepted a mismatched closing tag"

let test_xml_exception_api_delegates () =
  match Wm_xml.Xml.parse "<a><b></a>" with
  | exception Wm_xml.Xml.Parse_error m ->
      check bool "message has a position" true
        (String.length m > 0 && String.sub m 0 4 = "line")
  | _ -> Alcotest.fail "expected Parse_error"

let test_xml_valid_roundtrip () =
  let base = Lazy.force valid_xml in
  match Wm_xml.Xml.parse_result base with
  | Error e ->
      Alcotest.failf "valid XML rejected: %s" (Wm_xml.Xml.error_to_string e)
  | Ok doc -> check string "fixpoint" base (Wm_xml.Xml.to_string doc)

let suite =
  [
    ("textio fuzz (60 mutants)", `Quick, test_textio_fuzz);
    ("textio malformed inputs", `Quick, test_textio_malformed_are_errors);
    ("textio error line numbers", `Quick, test_textio_error_lines);
    ("textio exception API delegates", `Quick, test_textio_exception_api_delegates);
    ("textio name round-trip", `Quick, test_textio_name_roundtrip);
    ("textio serialization fixpoint", `Quick, test_textio_roundtrip_stable);
    ("edit script round-trip", `Quick, test_edit_script_roundtrip);
    ("edit script malformed inputs", `Quick, test_edit_script_malformed);
    ("xml fuzz (60 mutants)", `Quick, test_xml_fuzz);
    ("xml malformed inputs", `Quick, test_xml_malformed_are_errors);
    ("xml error positions", `Quick, test_xml_error_positions);
    ("xml exception API delegates", `Quick, test_xml_exception_api_delegates);
    ("xml serialization fixpoint", `Quick, test_xml_valid_roundtrip);
  ]
