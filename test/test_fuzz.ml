(* Fuzzing the total input APIs: Textio.of_string_result and
   Xml.parse_result must map EVERY input — truncated, bit-flipped, spliced
   — to Ok or Error, never to an escaping exception.  Plus the name
   round-trip guarantee of the Textio escaping. *)

let check = Alcotest.check
let bool = Alcotest.bool
let string = Alcotest.string
let int = Alcotest.int
let _ = (bool, string, int)

(* --- deterministic mutation of a valid input ------------------------- *)

let mutate g s =
  let n = String.length s in
  match Prng.int g 5 with
  | 0 -> String.sub s 0 (Prng.int g (n + 1)) (* truncate *)
  | 1 ->
      (* flip one byte to a random printable-ish character *)
      if n = 0 then s
      else begin
        let b = Bytes.of_string s in
        Bytes.set b (Prng.int g n) (Char.chr (32 + Prng.int g 96));
        Bytes.to_string b
      end
  | 2 ->
      (* splice a chunk of the input into itself *)
      if n < 2 then s
      else
        let i = Prng.int g n and j = Prng.int g n in
        String.sub s 0 i ^ String.sub s j (n - j)
  | 3 ->
      (* insert junk *)
      let i = Prng.int g (n + 1) in
      let junk =
        [| "\x00"; "%"; "&badent;"; "<"; "schema"; "-999999999999999999999";
           "rel X"; "</"; "9 9 9 9"; "\xff\xfe" |]
      in
      String.sub s 0 i ^ Prng.choose g junk ^ String.sub s i (n - i)
  | _ ->
      (* duplicate a line *)
      let lines = String.split_on_char '\n' s in
      let k = List.length lines in
      if k = 0 then s
      else
        let d = Prng.int g k in
        String.concat "\n"
          (List.concat (List.mapi (fun i l -> if i = d then [ l; l ] else [ l ]) lines))

(* --- Textio ---------------------------------------------------------- *)

let valid_textio =
  lazy
    (Textio.to_string
       (Wm_workload.Random_struct.travel (Prng.create 1) ~travels:8
          ~transports:20))

let test_textio_fuzz () =
  let g = Prng.create 0xF022 in
  let base = Lazy.force valid_textio in
  for _ = 1 to 60 do
    let input = mutate g base in
    match Textio.of_string_result input with
    | Ok _ | Error _ -> ()
    (* any exception escaping of_string_result fails the test run *)
  done

let malformed_textio =
  [
    "";
    "schema";
    "schema Route";
    "schema Route/x";
    "schema Route/2\nsize -5";
    "schema Route/2\nsize 3\nrel Route 0";
    "schema Route/2\nsize 3\nrel Route 0 9";
    "schema Route/2\nsize 3\nrel Nope 0 1";
    "schema Route/2\nsize 3\nweight";
    "schema Route/2\nsize 3\nweight 0 x";
    "schema Route/2\nsize 3\nname 99 far away";
    "schema Route/2\nsize 3\nbogus directive";
    "size 3";
    "schema Route/2";
    "schema Route/2\nweight_arity 0\nsize 3";
  ]

let test_textio_malformed_are_errors () =
  List.iter
    (fun input ->
      match Textio.of_string_result input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" input)
    malformed_textio

let test_textio_error_lines () =
  (* The error points at the offending line. *)
  match Textio.of_string_result "schema Route/2\nsize 3\nrel Route 0 9\n" with
  | Error e -> check int "line of the bad tuple" 3 e.Textio.line
  | Ok _ -> Alcotest.fail "accepted an out-of-range tuple"

let test_textio_exception_api_delegates () =
  match Textio.of_string "schema Route/2\nsize 3\nrel Route 0 9\n" with
  | exception Textio.Format_error m ->
      check bool "message carries the line" true
        (String.length m >= 6 && String.sub m 0 6 = "line 3")
  | _ -> Alcotest.fail "expected Format_error"

(* Names that exercise every escape: '#', '%', tabs, newlines, leading/
   trailing/doubled spaces — all must survive a write/parse cycle. *)
let test_textio_name_roundtrip () =
  let names =
    [| "plain"; "with#hash"; " lead"; "trail "; "two  spaces"; "pct%20";
       "tab\there"; "new\nline"; "%"; " "; "a # b % c" |]
  in
  let schema = Schema.make ~weight_arity:1 [ { Schema.name = "E"; arity = 2 } ] in
  let g = Structure.create ~names schema (Array.length names) in
  let g = Structure.add_tuple g "E" (Tuple.of_list [ 0; 1 ]) in
  let w =
    List.fold_left
      (fun w x -> Weighted.set w (Tuple.singleton x) (10 + x))
      (Weighted.create 1)
      (Structure.universe g)
  in
  let ws = Weighted.make g w in
  match Textio.of_string_result (Textio.to_string ws) with
  | Error e -> Alcotest.failf "round-trip rejected: %s" (Textio.error_to_string e)
  | Ok ws' ->
      Array.iteri
        (fun x n ->
          check string
            (Printf.sprintf "name %d" x)
            n
            (Structure.name_of ws'.Weighted.graph x))
        names;
      check bool "weights survive" true
        (Weighted.equal ws.Weighted.weights ws'.Weighted.weights)

(* A valid file still parses after a to_string/of_string/to_string cycle:
   the fuzz mutations above must not be the only guarantee. *)
let test_textio_roundtrip_stable () =
  let base = Lazy.force valid_textio in
  match Textio.of_string_result base with
  | Error e -> Alcotest.failf "valid input rejected: %s" (Textio.error_to_string e)
  | Ok ws -> check string "fixpoint" base (Textio.to_string ws)

(* --- edit scripts ----------------------------------------------------- *)

let test_edit_script_roundtrip () =
  let script =
    [
      Structure.Insert_tuple ("Route", Tuple.of_list [ 0; 3 ]);
      Structure.Delete_tuple ("Timetable", Tuple.of_list [ 3; 9; 10; 15 ]);
      Structure.Add_element None;
      Structure.Add_element (Some "with#hash and  spaces ");
      Structure.Remove_element 17;
    ]
  in
  match Textio.edits_of_string_result (Textio.edits_to_string script) with
  | Error e -> Alcotest.failf "round-trip rejected: %s" (Textio.error_to_string e)
  | Ok script' -> check bool "identical" true (script = script')

let test_edit_script_malformed () =
  (match Textio.edits_of_string_result "insert Route 0 1\nfrobnicate 2\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> check int "line" 2 e.Textio.line);
  (match Textio.edits_of_string_result "remove not_an_int\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ());
  (* insert/delete with no elements are malformed, not nullary tuples *)
  match Textio.edits_of_string_result "insert Route\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ()

(* --- frames (serve wire protocol) ------------------------------------ *)

(* Frame.decode is total: any byte string, any position, any max_len maps
   to Ok/Error — truncations and oversized declarations are positioned
   errors, never exceptions. *)
let test_frame_fuzz () =
  let g = Prng.create 0xF044 in
  let stream =
    String.concat ""
      (List.map Frame.encode
         [ "ping"; ""; "detect d 5 1"; String.make 300 'x'; "\x00\x01\xff" ])
  in
  for _ = 1 to 120 do
    let input = mutate g stream in
    let pos = Prng.int g (String.length input + 1) in
    let max_len = 1 + Prng.int g 512 in
    match Frame.decode ~max_len input ~pos with Ok _ | Error _ -> ()
  done

let test_frame_roundtrip () =
  let payloads =
    [ ""; "a"; "ok detect\nmessage 101"; String.make 4096 '\x00';
      "\x01\x02\x03\xfe\xff"; String.init 256 Char.chr ]
  in
  let stream = String.concat "" (List.map Frame.encode payloads) in
  let rec walk pos acc =
    match Frame.decode stream ~pos with
    | Ok None -> List.rev acc
    | Ok (Some (payload, next)) -> walk next (payload :: acc)
    | Error e -> Alcotest.failf "decode: %s" (Frame.error_to_string e)
  in
  check bool "payloads survive framing" true (walk 0 [] = payloads)

let test_frame_truncation_positions () =
  let f = Frame.encode "hello" in
  (* every strict prefix is a positioned truncation error, except the
     empty stream (a clean end between frames) *)
  for cut = 1 to String.length f - 1 do
    match Frame.decode (String.sub f 0 cut) ~pos:0 with
    | Error e ->
        check int (Printf.sprintf "cut at %d points at first missing byte" cut)
          cut e.Frame.at
    | Ok _ -> Alcotest.failf "prefix of length %d accepted" cut
  done;
  (match Frame.decode "" ~pos:0 with
  | Ok None -> ()
  | _ -> Alcotest.fail "empty stream should be a clean end");
  (* an oversized declaration points at the frame start, not its body *)
  let big = Frame.encode (String.make 100 'z') in
  match Frame.decode ~max_len:10 (Frame.encode "ok" ^ big) ~pos:0 with
  | Ok (Some ("ok", next)) -> (
      match Frame.decode ~max_len:10 (Frame.encode "ok" ^ big) ~pos:next with
      | Error e -> check int "oversize error at frame start" next e.Frame.at
      | Ok _ -> Alcotest.fail "oversized frame accepted")
  | _ -> Alcotest.fail "first frame should decode"

(* The serve request/response decoders are total too: they sit directly
   behind the socket, so no byte sequence may raise. *)
let test_protocol_decode_fuzz () =
  let module P = Wm_serve.Protocol in
  let g = Prng.create 0xF055 in
  let bases =
    [ P.encode_request (P.Gen { id = "d"; n = 30; seed = 7 });
      P.encode_request
        (P.Prepare
           { id = "d"; seed = 1; rho = None; epsilon = 1.0; shard = true;
             qspec = P.Fo { params = [ "u" ]; results = [ "v" ]; formula = "u = v" } });
      P.encode_request (P.Batch [ "ping"; "info d" ]);
      P.ok_payload "detect" [ ("message", "101") ] ~body:"x";
      P.err_payload "boom % \x01";
    ]
  in
  for _ = 1 to 150 do
    let input = mutate g (Prng.choose g (Array.of_list bases)) in
    (match P.decode_request input with Ok _ | Error _ -> ());
    match P.decode_response input with Ok _ | Error _ -> ()
  done

(* Control bytes below 0x20 must survive a name round-trip — the wire
   protocol reuses this escaping for single-line error text. *)
let test_textio_control_byte_roundtrip () =
  for c = 0 to 255 do
    let s = Printf.sprintf "a%cb" (Char.chr c) in
    check string
      (Printf.sprintf "byte 0x%02x" c)
      s
      (Textio.unescape_name (Textio.escape_name s));
    let e = Textio.escape_name s in
    check bool
      (Printf.sprintf "escaped 0x%02x is one clean line" c)
      true
      (not (String.exists (fun ch -> ch < ' ') e))
  done

(* --- XML ------------------------------------------------------------- *)

let valid_xml =
  lazy
    (Wm_xml.Xml.to_string
       (Wm_xml.Utree.to_xml
          (Wm_workload.School_xml.generate (Prng.create 2) ~students:6 ())))

let test_xml_fuzz () =
  let g = Prng.create 0xF033 in
  let base = Lazy.force valid_xml in
  for _ = 1 to 60 do
    let input = mutate g base in
    match Wm_xml.Xml.parse_result input with Ok _ | Error _ -> ()
  done

let malformed_xml =
  [
    "";
    "just text";
    "<";
    "<a";
    "<a>";
    "</a>";
    "<a></b>";
    "<a><b></a></b>";
    "<a b=></a>";
    "<a b='x></a>";
    "<a>&bogus;</a>";
    "<a>&unterminated</a>";
    "<a/><b/>";
    "<!-- unterminated";
    "<?pi unterminated";
    "<a>text</a> trailing";
  ]

let test_xml_malformed_are_errors () =
  List.iter
    (fun input ->
      match Wm_xml.Xml.parse_result input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed XML %S" input)
    malformed_xml

let test_xml_error_positions () =
  match Wm_xml.Xml.parse_result "<a>\n  <b>\n</a>" with
  | Error e ->
      check bool "line past the opening tag" true (e.Wm_xml.Xml.line >= 2)
  | Ok _ -> Alcotest.fail "accepted a mismatched closing tag"

let test_xml_exception_api_delegates () =
  match Wm_xml.Xml.parse "<a><b></a>" with
  | exception Wm_xml.Xml.Parse_error m ->
      check bool "message has a position" true
        (String.length m > 0 && String.sub m 0 4 = "line")
  | _ -> Alcotest.fail "expected Parse_error"

let test_xml_valid_roundtrip () =
  let base = Lazy.force valid_xml in
  match Wm_xml.Xml.parse_result base with
  | Error e ->
      Alcotest.failf "valid XML rejected: %s" (Wm_xml.Xml.error_to_string e)
  | Ok doc -> check string "fixpoint" base (Wm_xml.Xml.to_string doc)

let suite =
  [
    ("textio fuzz (60 mutants)", `Quick, test_textio_fuzz);
    ("textio malformed inputs", `Quick, test_textio_malformed_are_errors);
    ("textio error line numbers", `Quick, test_textio_error_lines);
    ("textio exception API delegates", `Quick, test_textio_exception_api_delegates);
    ("textio name round-trip", `Quick, test_textio_name_roundtrip);
    ("textio serialization fixpoint", `Quick, test_textio_roundtrip_stable);
    ("edit script round-trip", `Quick, test_edit_script_roundtrip);
    ("edit script malformed inputs", `Quick, test_edit_script_malformed);
    ("frame fuzz (120 mutants)", `Quick, test_frame_fuzz);
    ("frame stream round-trip", `Quick, test_frame_roundtrip);
    ("frame truncation positions", `Quick, test_frame_truncation_positions);
    ("protocol decode fuzz (150 mutants)", `Quick, test_protocol_decode_fuzz);
    ("textio control-byte round-trip", `Quick, test_textio_control_byte_roundtrip);
    ("xml fuzz (60 mutants)", `Quick, test_xml_fuzz);
    ("xml malformed inputs", `Quick, test_xml_malformed_are_errors);
    ("xml error positions", `Quick, test_xml_error_positions);
    ("xml exception API delegates", `Quick, test_xml_exception_api_delegates);
    ("xml serialization fixpoint", `Quick, test_xml_valid_roundtrip);
  ]
