(* End-to-end tests of the wmark binary, driven through the shell.  The
   binary sits in the same _build tree as this test; skip gracefully when
   it is missing (e.g. partial builds). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let _ = (int, bool)

let wmark_path =
  List.find_opt Sys.file_exists
    [ "../bin/wmark.exe"; "_build/default/bin/wmark.exe"; "bin/wmark.exe" ]

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("qpwm_cli_" ^ name)

let run_cli args =
  match wmark_path with
  | None -> None
  | Some bin ->
      let cmd =
        Printf.sprintf "%s %s > %s 2>&1" (Filename.quote bin) args
          (Filename.quote (tmp "out"))
      in
      let code = Sys.command cmd in
      let ic = open_in (tmp "out") in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some (code, text)

let skip_or f =
  match wmark_path with
  | None -> () (* binary not built in this configuration *)
  | Some _ -> f ()

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_cli_relational_cycle () =
  skip_or @@ fun () ->
  let db = tmp "db.txt" and marked = tmp "marked.txt" in
  (match run_cli (Printf.sprintf "gen-travel --travels 25 --transports 60 --seed 5 -o %s" db) with
  | Some (0, _) -> ()
  | Some (c, out) -> Alcotest.fail (Printf.sprintf "gen-travel exit %d: %s" c out)
  | None -> ());
  (match run_cli (Printf.sprintf "mark %s -q \"Route(u,v)\" -m 9 --bits 4 -o %s" db marked) with
  | Some (0, _) -> ()
  | Some (c, out) -> Alcotest.fail (Printf.sprintf "mark exit %d: %s" c out)
  | None -> ());
  match run_cli (Printf.sprintf "detect %s %s -q \"Route(u,v)\" --bits 4" db marked) with
  | Some (0, out) -> check bool "decoded 9" true (contains out "decoded: 9")
  | Some (c, out) -> Alcotest.fail (Printf.sprintf "detect exit %d: %s" c out)
  | None -> ()

let test_cli_info_and_vc () =
  skip_or @@ fun () ->
  let db = tmp "db2.txt" in
  ignore (run_cli (Printf.sprintf "gen-travel --travels 12 --transports 10 --seed 6 -o %s" db));
  (match run_cli (Printf.sprintf "info %s -q \"Route(u,v)\"" db) with
  | Some (0, out) -> check bool "has capacity line" true (contains out "capacity")
  | Some (c, out) -> Alcotest.fail (Printf.sprintf "info exit %d: %s" c out)
  | None -> ());
  match run_cli (Printf.sprintf "vc %s -q \"Route(u,v)\"" db) with
  | Some (0, out) -> check bool "has VC line" true (contains out "VC dimension")
  | Some (c, out) -> Alcotest.fail (Printf.sprintf "vc exit %d: %s" c out)
  | None -> ()

let test_cli_xml_cycle () =
  skip_or @@ fun () ->
  let doc = tmp "school.xml" and marked = tmp "schoolm.xml" in
  ignore (run_cli (Printf.sprintf "gen-school --students 60 --seed 7 -o %s" doc));
  (match
     run_cli
       (Printf.sprintf
          "xml-mark %s -p 'school/student[firstname=$a]/exam' -m 3 --bits 2 -o %s"
          doc marked)
   with
  | Some (0, _) -> ()
  | Some (c, out) -> Alcotest.fail (Printf.sprintf "xml-mark exit %d: %s" c out)
  | None -> ());
  match
    run_cli
      (Printf.sprintf
         "xml-detect %s %s -p 'school/student[firstname=$a]/exam' --bits 2" doc
         marked)
  with
  | Some (0, out) -> check bool "decoded 3" true (contains out "decoded: 3")
  | Some (c, out) -> Alcotest.fail (Printf.sprintf "xml-detect exit %d: %s" c out)
  | None -> ()

let test_cli_bad_input () =
  skip_or @@ fun () ->
  let bogus = tmp "bogus.txt" in
  let oc = open_out bogus in
  output_string oc "not a structure\n";
  close_out oc;
  match run_cli (Printf.sprintf "info %s -q \"Route(u,v)\"" bogus) with
  | Some (code, out) ->
      check bool "nonzero exit" true (code <> 0);
      check bool "diagnostic" true (contains out "wmark:")
  | None -> ()

let test_cli_jobs_zero () =
  skip_or @@ fun () ->
  let db = tmp "db3.txt" in
  ignore (run_cli (Printf.sprintf "gen-travel --travels 12 --transports 10 --seed 6 -o %s" db));
  match run_cli (Printf.sprintf "info %s -q \"Route(u,v)\" --jobs 0" db) with
  | Some (code, out) ->
      check bool "nonzero exit" true (code <> 0);
      check bool "names the bad value" true (contains out "--jobs 0")
  | None -> ()

let test_cli_update () =
  skip_or @@ fun () ->
  let db = tmp "db4.txt" and script = tmp "edits.txt" and out_db = tmp "db4e.txt" in
  ignore (run_cli (Printf.sprintf "gen-travel --travels 20 --transports 50 --seed 5 -o %s" db));
  let oc = open_out script in
  output_string oc "# grow the instance a little\ninsert Route 3 4\nadd fresh\n";
  close_out oc;
  (match
     run_cli
       (Printf.sprintf "update %s --edits %s -q \"Route(u,v)\" -o %s" db script
          out_db)
   with
  | Some (0, out) ->
      check bool "reports a decision" true (contains out "decision");
      check bool "wrote the edited copy" true (Sys.file_exists out_db)
  | Some (c, out) -> Alcotest.fail (Printf.sprintf "update exit %d: %s" c out)
  | None -> ());
  (* a malformed script is a diagnostic, not a crash *)
  let oc = open_out script in
  output_string oc "frobnicate 1 2\n";
  close_out oc;
  match run_cli (Printf.sprintf "update %s --edits %s -q \"Route(u,v)\"" db script) with
  | Some (code, out) ->
      check bool "nonzero exit" true (code <> 0);
      check bool "diagnostic" true (contains out "wmark:")
  | None -> ()

let suite =
  [
    ("cli relational cycle", `Slow, test_cli_relational_cycle);
    ("cli info and vc", `Slow, test_cli_info_and_vc);
    ("cli xml cycle", `Slow, test_cli_xml_cycle);
    ("cli rejects bad input", `Slow, test_cli_bad_input);
    ("cli rejects --jobs 0", `Slow, test_cli_jobs_zero);
    ("cli update subcommand", `Slow, test_cli_update);
  ]
