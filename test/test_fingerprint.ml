(* Tests for Wm_watermark.Fingerprint: key derivation, per-recipient
   marking, collusion attacks, traitor tracing with multiple-testing
   correction, and the PRNG stream discipline of coalition cells. *)

open Wm_watermark
open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let raises f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* An identity-query scheme over a ring workload: constant-time result
   sets give enough capacity for production-sized codewords in a test. *)
let identity_qs n =
  Query_system.of_custom
    ~params:(List.init n Tuple.singleton)
    ~result_set:(fun p -> Tuple.Set.singleton p)
    ~weight_arity:1

let identity_query =
  lazy (Parser.query_of_string ~params:[ "u" ] ~results:[ "v" ] "u = v")

let context ?length ?times ?(master = 0xBEEF) ?(seed = 11) ~n () =
  let ws = Random_struct.regular_rings (Prng.create seed) ~n in
  let qs = identity_qs (Structure.size ws.Weighted.graph) in
  match Local_scheme.prepare ~qs ws (Lazy.force identity_query) with
  | Error e -> Alcotest.fail ("prepare: " ^ e)
  | Ok scheme -> (
      match Fingerprint.of_local ?length ?times ~master scheme with
      | Error e -> Alcotest.fail ("fingerprint: " ^ e)
      | Ok t -> (t, ws))

(* --- geometry and key derivation ------------------------------------- *)

let test_geometry_defaults () =
  let t, _ = context ~n:400 () in
  check bool "length <= 128" true (Fingerprint.length t <= 128);
  check int "times odd" 1 (Fingerprint.times t mod 2);
  check bool "fits" true
    (Fingerprint.times t * Fingerprint.length t >= Fingerprint.length t)

let test_geometry_rejects_oversize () =
  let ws = Random_struct.regular_rings (Prng.create 1) ~n:40 in
  let qs = identity_qs (Structure.size ws.Weighted.graph) in
  match Local_scheme.prepare ~qs ws (Lazy.force identity_query) with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      (match Fingerprint.of_local ~length:100_000 ~master:1 scheme with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "oversize codeword accepted");
      (match Fingerprint.of_local ~length:4 ~times:2 ~master:1 scheme with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)

let test_recipient_key_master_dependent () =
  check bool "distinct recipients, distinct keys" true
    (Fingerprint.recipient_key ~master:7 "alice"
    <> Fingerprint.recipient_key ~master:7 "bob");
  check bool "distinct masters, distinct keys" true
    (Fingerprint.recipient_key ~master:7 "alice"
    <> Fingerprint.recipient_key ~master:8 "alice");
  check bool "deterministic" true
    (Fingerprint.recipient_key ~master:7 "alice"
    = Fingerprint.recipient_key ~master:7 "alice");
  check bool "non-negative" true (Fingerprint.recipient_key ~master:7 "x" >= 0)

let prop_distinct_recipients_distinct_marks =
  QCheck.Test.make ~count:50 ~name:"distinct recipients get distinct marks"
    QCheck.(pair small_printable_string small_printable_string)
    (fun (r1, r2) ->
      QCheck.assume (r1 <> r2);
      let t, ws = context ~n:120 () in
      let m1 = Fingerprint.mark_for t r1 ws.Weighted.weights in
      let m2 = Fingerprint.mark_for t r2 ws.Weighted.weights in
      (not (Bitvec.equal (Fingerprint.codeword t r1) (Fingerprint.codeword t r2)))
      && Fingerprint.digest m1 <> Fingerprint.digest m2)

(* --- verify ---------------------------------------------------------- *)

let test_verify_right_and_wrong_key () =
  let t, ws = context ~n:200 () in
  let w = ws.Weighted.weights in
  let marked = Fingerprint.mark_for t "alice" w in
  check bool "right recipient verifies" true
    (Fingerprint.verify t "alice" ~original:w ~suspect:marked);
  check bool "wrong recipient fails" false
    (Fingerprint.verify t "bob" ~original:w ~suspect:marked);
  check bool "unmarked copy fails" false
    (Fingerprint.verify t "alice" ~original:w ~suspect:w)

let prop_wrong_key_fails =
  QCheck.Test.make ~count:40 ~name:"verify under the wrong key fails"
    QCheck.(pair small_printable_string small_printable_string)
    (fun (r1, r2) ->
      QCheck.assume (r1 <> r2);
      let t, ws = context ~n:120 () in
      let w = ws.Weighted.weights in
      let marked = Fingerprint.mark_for t r1 w in
      Fingerprint.verify t r1 ~original:w ~suspect:marked
      && not (Fingerprint.verify t r2 ~original:w ~suspect:marked))

(* --- tracing --------------------------------------------------------- *)

let thousand_rids = List.init 1000 (fun i -> "r" ^ string_of_int i)

(* Coalition of 3 out of 10^3 recipients, majority-vote collusion plus
   independent per-copy laundering noise: tracing must accuse exactly the
   coalition, nobody else. *)
let test_trace_coalition_of_thousand () =
  (* 256-bit codewords: at length 128 a coalition member's per-bit
     agreement of ~3/4 sits too close to the Šidák threshold over 10^3
     candidates; doubling the codeword pushes the miss probability below
     1e-4 so the fixed seed has real margin. *)
  let t, ws = context ~n:900 ~length:256 () in
  let w = ws.Weighted.weights in
  let coalition = [ "r17"; "r421"; "r900" ] in
  let cell_seed = 42 in
  let copies =
    Array.of_list
      (List.mapi
         (fun ci rid ->
           Adversary.apply
             (Adversary.copy_prng ~cell_seed ~copy:ci)
             (Adversary.Uniform_noise { amplitude = 1 })
             ~active:(List.init 900 Tuple.singleton)
             (Fingerprint.mark_for t rid w))
         coalition)
  in
  let colluded =
    Adversary.apply_collusion (Prng.create cell_seed)
      Adversary.Coalition_majority
      ~active:(List.init 900 Tuple.singleton)
      copies
  in
  let rep =
    Fingerprint.trace ~jobs:1 t ~original:w ~suspect:colluded thousand_rids
  in
  check (Alcotest.list Alcotest.string) "accused exactly the coalition"
    coalition rep.Fingerprint.accused;
  check bool "threshold corrected below alpha" true
    (rep.Fingerprint.threshold < rep.Fingerprint.alpha)

let test_trace_single_leaker () =
  let t, ws = context ~n:400 () in
  let w = ws.Weighted.weights in
  let marked = Fingerprint.mark_for t "r421" w in
  let rep = Fingerprint.trace ~jobs:1 t ~original:w ~suspect:marked thousand_rids in
  check (Alcotest.list Alcotest.string) "single leaker accused" [ "r421" ]
    rep.Fingerprint.accused;
  check int "all bits decided" (Fingerprint.length t) rep.Fingerprint.decided

let test_trace_clean_copy_accuses_nobody () =
  let t, ws = context ~n:400 () in
  let w = ws.Weighted.weights in
  let rep = Fingerprint.trace ~jobs:1 t ~original:w ~suspect:w thousand_rids in
  check (Alcotest.list Alcotest.string) "no accusations" []
    rep.Fingerprint.accused;
  check int "nothing decided" 0 rep.Fingerprint.decided

let test_trace_empty_candidates_rejected () =
  let t, ws = context ~n:120 () in
  let w = ws.Weighted.weights in
  check bool "empty candidate list" true
    (raises (fun () -> Fingerprint.trace t ~original:w ~suspect:w []))

(* --- determinism across job counts ----------------------------------- *)

let test_trace_jobs_invariant () =
  let t, ws = context ~n:400 () in
  let w = ws.Weighted.weights in
  let copies =
    Array.of_list
      (List.map (fun rid -> Fingerprint.mark_for t rid w) [ "r3"; "r7" ])
  in
  let colluded =
    Adversary.apply_collusion (Prng.create 5) Adversary.Coalition_mix
      ~active:(List.init 400 Tuple.singleton)
      copies
  in
  let rep jobs =
    Fingerprint.trace ~jobs t ~original:w ~suspect:colluded thousand_rids
  in
  check bool "jobs 1 = jobs 2" true (rep 1 = rep 2);
  check bool "jobs 1 = jobs 4" true (rep 1 = rep 4)

let test_grid_jobs_invariant () =
  let t, ws = context ~n:200 () in
  let w = ws.Weighted.weights in
  let grid jobs =
    Fingerprint.run_grid ~jobs ~recipients:[ 60 ] ~coalitions:[ 1; 2 ]
      ~attacks:[ Adversary.Coalition_majority; Adversary.Coalition_mix ]
      t w
  in
  let g1 = grid 1 and g2 = grid 2 in
  check bool "grid jobs 1 = jobs 2" true (g1 = g2);
  check int "rows" 4 (List.length g1.Fingerprint.rows)

let test_grid_no_collusion_row_clean () =
  let t, ws = context ~n:900 ~length:256 () in
  let w = ws.Weighted.weights in
  let g =
    Fingerprint.run_grid ~jobs:1 ~recipients:[ 200 ] ~coalitions:[ 1; 3 ]
      ~attacks:[ Adversary.Coalition_majority ] t w
  in
  List.iter
    (fun (o : Fingerprint.outcome) ->
      check int ("no false accusations k=" ^ string_of_int o.Fingerprint.coalition)
        0 o.Fingerprint.false_accusations;
      check bool "traced" true o.Fingerprint.traced)
    g.Fingerprint.rows

(* --- coalition PRNG stream discipline -------------------------------- *)

(* Distinct copies of one cell must be perturbed on distinct, independent
   streams: a shared stream correlates the copies' noise, which cancels
   in weight differences and understates the attack. *)
let test_copy_prng_streams_independent () =
  let draws ~cell_seed ~copy =
    let g = Adversary.copy_prng ~cell_seed ~copy in
    List.init 8 (fun _ -> Prng.int g 1000)
  in
  check bool "same (seed, copy) replays" true
    (draws ~cell_seed:9 ~copy:0 = draws ~cell_seed:9 ~copy:0);
  check bool "copy 0 <> copy 1" true
    (draws ~cell_seed:9 ~copy:0 <> draws ~cell_seed:9 ~copy:1);
  check bool "copy 1 <> copy 2" true
    (draws ~cell_seed:9 ~copy:1 <> draws ~cell_seed:9 ~copy:2);
  check bool "cells differ" true
    (draws ~cell_seed:9 ~copy:0 <> draws ~cell_seed:10 ~copy:0);
  check bool "negative copy rejected" true
    (raises (fun () -> Adversary.copy_prng ~cell_seed:9 ~copy:(-1)))

(* Draw-order regression: Coalition_mix consumes exactly one draw per
   active tuple and nothing else, so the combined copy is a pure function
   of (seed, active order) and stays stable as the module evolves. *)
let test_collusion_draw_order_pinned () =
  let actives = List.init 6 Tuple.singleton in
  let w0 = Weighted.create 1 in
  let copies =
    Array.init 2 (fun c ->
        List.fold_left
          (fun w t -> Weighted.set w t ((10 * (c + 1)) + Tuple.max_elt t))
          w0 actives)
  in
  let mixed =
    Adversary.apply_collusion (Prng.create 77) Adversary.Coalition_mix
      ~active:actives copies
  in
  (* the donor sequence is exactly the first 6 draws of Prng.create 77 *)
  let g = Prng.create 77 in
  List.iteri
    (fun i t ->
      let donor = Prng.int g 2 in
      check int
        ("mix donor for tuple " ^ string_of_int i)
        ((10 * (donor + 1)) + i)
        (Weighted.get mixed t))
    actives;
  (* interleave: shuffle of k elements then one offset draw, then zero
     draws per tuple — each copy donates an exactly balanced share *)
  let inter =
    Adversary.apply_collusion (Prng.create 77) Adversary.Coalition_interleave
      ~active:actives copies
  in
  let donated =
    List.map (fun t -> Weighted.get inter t / 10) actives
  in
  check int "interleave balanced: copy 1 donates half" 3
    (List.length (List.filter (( = ) 1) donated));
  check int "interleave balanced: copy 2 donates half" 3
    (List.length (List.filter (( = ) 2) donated));
  check bool "interleave deterministic" true
    (inter
    = Adversary.apply_collusion (Prng.create 77)
        Adversary.Coalition_interleave ~active:actives copies);
  (* majority draws nothing: k = 1 coalition is the copy itself *)
  check bool "majority of one is identity" true
    (Adversary.apply_collusion (Prng.create 1) Adversary.Coalition_majority
       ~active:actives [| copies.(0) |]
    = copies.(0));
  check bool "empty coalition rejected" true
    (raises (fun () ->
         Adversary.apply_collusion (Prng.create 1)
           Adversary.Coalition_majority ~active:actives [||]))

(* --- corrected thresholds and tie-explicit decoding ------------------ *)

let test_corrections () =
  check bool "bonferroni divides" true
    (Detector.bonferroni ~alpha:0.05 ~tests:10 = 0.005);
  check bool "sidak less conservative" true
    (Detector.sidak ~alpha:0.05 ~tests:10 > Detector.bonferroni ~alpha:0.05 ~tests:10);
  check bool "equal at one test" true
    (abs_float (Detector.sidak ~alpha:0.05 ~tests:1 -. 0.05) < 1e-12);
  check bool "alpha 0 rejected" true
    (raises (fun () -> Detector.sidak ~alpha:0. ~tests:3));
  check bool "tests 0 rejected" true
    (raises (fun () -> Detector.bonferroni ~alpha:0.05 ~tests:0))

let test_majority_decode_opt_ties () =
  (* times 2, bits [1 0; 0 0]: bit 0 splits 1-1 (a tie the biased
     decoder would silently call 0), bit 1 is a clean 0 *)
  let v = Codec.of_bool_list [ true; false; false; false ] in
  (match Codec.majority_decode_opt ~times:2 v with
  | [| None; Some false |] -> ()
  | _ -> Alcotest.fail "tie not surfaced");
  (* interleaved layout: bit i's votes sit at positions t*l + i *)
  let v3 = Codec.of_bool_list [ true; true; false; true; false; false ] in
  (match Codec.majority_decode_opt ~times:3 v3 with
  | [| Some false; Some true |] -> ()
  | _ -> Alcotest.fail "odd majority wrong");
  check bool "bad times rejected" true
    (raises (fun () -> Codec.majority_decode_opt ~times:0 v));
  check bool "length mismatch rejected" true
    (raises (fun () ->
         Codec.majority_decode_opt ~times:3 (Codec.of_bool_list [ true; false ])))

let suite =
  [
    ("geometry defaults", `Quick, test_geometry_defaults);
    ("geometry rejects oversize", `Quick, test_geometry_rejects_oversize);
    ("recipient keys", `Quick, test_recipient_key_master_dependent);
    QCheck_alcotest.to_alcotest prop_distinct_recipients_distinct_marks;
    ("verify right and wrong key", `Quick, test_verify_right_and_wrong_key);
    QCheck_alcotest.to_alcotest prop_wrong_key_fails;
    ("trace coalition of 3 in 1000", `Slow, test_trace_coalition_of_thousand);
    ("trace single leaker", `Slow, test_trace_single_leaker);
    ("trace clean copy", `Slow, test_trace_clean_copy_accuses_nobody);
    ("trace empty candidates", `Quick, test_trace_empty_candidates_rejected);
    ("trace jobs invariant", `Slow, test_trace_jobs_invariant);
    ("grid jobs invariant", `Slow, test_grid_jobs_invariant);
    ("grid no-collusion rows clean", `Slow, test_grid_no_collusion_row_clean);
    ("copy prng streams", `Quick, test_copy_prng_streams_independent);
    ("collusion draw order pinned", `Quick, test_collusion_draw_order_pinned);
    ("corrected thresholds", `Quick, test_corrections);
    ("majority decode ties", `Quick, test_majority_decode_opt_ties);
  ]
