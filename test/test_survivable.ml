(* Tests for Wm_watermark.Survivable and the structural half of
   Wm_watermark.Adversary: alignment by names / path signatures, erasure
   accounting in the detector, erasure-aware redundant decoding, and the
   headline contrast — under structural attacks the survivable detector
   recovers the message while the id-keyed aligned detector loses it. *)

open Wm_watermark
open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let _ = (int, bool, string)

(* One shared workload: the Example 1 travel database, large enough for a
   4-bit message at redundancy 5 (capacity 25 with default options). *)

let bits = 4
let times = 5
let message = Codec.of_int ~bits 0b1011

let prepared =
  lazy
    (let ws = Random_struct.travel (Prng.create 19) ~travels:100 ~transports:400 in
     let q = Random_struct.travel_query in
     match Local_scheme.prepare ws q with
     | Error e -> failwith ("test_survivable: " ^ e)
     | Ok scheme ->
         let base = Robust.of_local scheme in
         let marked = Robust.mark base ~times message ws.Weighted.weights in
         (ws, scheme, base, { ws with Weighted.weights = marked }))

(* The aligned (id-keyed) detection path the paper's model gives us: read
   the suspect's weights through the original query system. *)
let aligned_detect ws scheme base (suspect : Weighted.structure) =
  let qs = Local_scheme.query_system scheme in
  Robust.detect base ~times ~length:bits ~original:ws.Weighted.weights
    ~server:(Query_system.server qs suspect.Weighted.weights)

let survivable_detect ws scheme (suspect : Weighted.structure) =
  Survivable.detect_structure scheme ~times ~length:bits ~original:ws
    ~suspect

(* --- the acceptance contrast ----------------------------------------- *)

let test_delete20_survivable_recovers () =
  let ws, scheme, base, marked = Lazy.force prepared in
  let attacked =
    Adversary.apply_structural (Prng.create 7)
      (Adversary.Delete_tuples { fraction = 0.2 })
      marked
  in
  (* The attack really removed rows. *)
  check bool "universe shrank" true
    (Structure.size attacked.Weighted.graph < Structure.size ws.Weighted.graph);
  let rv, alignment = survivable_detect ws scheme attacked in
  check bool "survivable recovers the message" true
    (Bitvec.equal message rv.Survivable.message);
  let p = Survivable.match_pvalue ~expected:message rv in
  check bool "significant (p < 0.01)" true (p < 0.01);
  check bool "some carriers were lost" true (alignment.Survivable.missing > 0);
  (* The aligned detector reads renumbered ids as garbage and fails. *)
  let naive = aligned_detect ws scheme base attacked in
  check bool "aligned detector loses the message" false
    (Bitvec.equal message naive)

let test_subset_sample_recovers () =
  let ws, scheme, _, marked = Lazy.force prepared in
  let attacked =
    Adversary.apply_structural (Prng.create 11)
      (Adversary.Subset_sample { keep = 0.5 })
      marked
  in
  let rv, _ = survivable_detect ws scheme attacked in
  check bool "recovered from a 50% sample" true
    (Bitvec.equal message rv.Survivable.message);
  check bool "significant" true (Survivable.match_pvalue ~expected:message rv < 0.01)

let test_insert_noise_recovers () =
  let ws, scheme, _, marked = Lazy.force prepared in
  let attacked =
    Adversary.apply_structural (Prng.create 13)
      (Adversary.Insert_noise_tuples { count = 50; amplitude = 999 })
      marked
  in
  check bool "universe grew" true
    (Structure.size attacked.Weighted.graph > Structure.size ws.Weighted.graph);
  let rv, alignment = survivable_detect ws scheme attacked in
  check bool "recovered after noise insertion" true
    (Bitvec.equal message rv.Survivable.message);
  (* Insertions add new rows but delete none: every carrier survives. *)
  check int "no carriers lost" 0 alignment.Survivable.missing

let test_shuffle_recovers () =
  let ws, scheme, base, marked = Lazy.force prepared in
  let attacked =
    Adversary.apply_structural (Prng.create 17) Adversary.Shuffle_universe marked
  in
  check int "same size" (Structure.size ws.Weighted.graph)
    (Structure.size attacked.Weighted.graph);
  let rv, alignment = survivable_detect ws scheme attacked in
  check int "every carrier realigned" 0 alignment.Survivable.missing;
  check bool "recovered after renumbering" true
    (Bitvec.equal message rv.Survivable.message);
  check bool "aligned detector loses the message" false
    (Bitvec.equal message (aligned_detect ws scheme base attacked))

(* --- erasure accounting ---------------------------------------------- *)

let test_erasure_partition () =
  let ws, scheme, _, marked = Lazy.force prepared in
  let attacked =
    Adversary.apply_structural (Prng.create 23)
      (Adversary.Delete_tuples { fraction = 0.4 })
      marked
  in
  let rv, _ = survivable_detect ws scheme attacked in
  let v = rv.Survivable.carriers in
  (* Every carrier is exactly one of strong / weak / silent / erased. *)
  check int "partition of the carriers" (times * bits)
    (v.Detector.strong + v.Detector.weak + v.Detector.silent + v.Detector.erased);
  check int "erasure bits match the count" v.Detector.erased
    (List.length
       (List.filter
          (fun i -> Bitvec.get v.Detector.erasure i)
          (List.init (Bitvec.length v.Detector.erasure) Fun.id)))

let test_identity_alignment_is_total () =
  let ws, scheme, _, marked = Lazy.force prepared in
  let rv, alignment = survivable_detect ws scheme marked in
  check int "nothing missing" 0 alignment.Survivable.missing;
  check int "nothing erased" 0 rv.Survivable.carriers.Detector.erased;
  check bool "exact read" true (Bitvec.equal message rv.Survivable.message)

(* On total wipe-out every bit is an erasure, not a confident zero. *)
let test_all_erased () =
  let ws, scheme, _, _ = Lazy.force prepared in
  let empty =
    Adversary.apply_structural (Prng.create 3)
      (Adversary.Subset_sample { keep = 0.0 })
      ws
  in
  let rv, _ = survivable_detect ws scheme empty in
  check int "all message bits erased" bits rv.Survivable.erased_bits;
  check bool "all_erased verdict is explicit" true rv.Survivable.all_erased;
  check bool "no significance claimed" true
    (Survivable.match_pvalue ~expected:message rv >= 0.5);
  (* a partial attack must NOT raise the flag *)
  let partial =
    Adversary.apply_structural (Prng.create 3)
      (Adversary.Subset_sample { keep = 0.5 })
      (let _, _, _, marked = Lazy.force prepared in marked)
  in
  let rv', _ = survivable_detect ws scheme partial in
  check bool "partial survival is not all_erased" false rv'.Survivable.all_erased

(* Regression pin: the zero-trials binomial is the uninformative 1.0 —
   the value the all-erasures verdict bottoms out on — never an
   exception or a confident 0. *)
let test_binomial_zero_trials () =
  check bool "p(0 trials, 0 successes) = 1" true
    (Detector.binomial_tail ~trials:0 ~successes:0 = 1.0);
  check bool "p(0 trials, any p) = 1" true
    (Detector.binomial_tail_p ~p:0.25 ~trials:0 ~successes:0 = 1.0);
  check bool "successes beyond trials impossible" true
    (Detector.binomial_tail ~trials:0 ~successes:1 = 0.0)

(* --- XML ------------------------------------------------------------- *)

let xml_prepared =
  lazy
    (let doc = School_xml.generate (Prng.create 20) ~students:300 () in
     match Pipeline.prepare_xml doc School_xml.example4_pattern with
     | Error e -> failwith ("test_survivable xml: " ^ e)
     | Ok xs ->
         let base = Robust.of_tree xs.Pipeline.scheme in
         let r = Robust.redundancy_for base ~message_length:bits in
         let marked =
           Wm_xml.Utree.with_weights doc
             (Robust.mark base ~times:r message (Wm_xml.Utree.weights doc))
         in
         (doc, xs, r, marked))

let xml_detect doc xs r suspect =
  Survivable.detect_tree
    ~pairs:(Tree_scheme.pairs xs.Pipeline.scheme)
    ~times:r ~length:bits ~original:doc suspect

let test_xml_identity_alignment () =
  let doc, _, _, marked = Lazy.force xml_prepared in
  let a = Survivable.align_trees ~original:doc ~suspect:marked in
  check int "every value node aligned" 0 a.Survivable.missing;
  check int "total = value nodes" (List.length (Wm_xml.Utree.value_nodes doc))
    a.Survivable.total

let test_xml_delete_subtrees () =
  let doc, xs, r, marked = Lazy.force xml_prepared in
  let attacked =
    Adversary.apply_tree (Prng.create 31)
      (Adversary.Delete_subtrees { fraction = 0.2 })
      marked
  in
  check bool "tree shrank" true (Wm_xml.Utree.size attacked < Wm_xml.Utree.size marked);
  let rv, _ = xml_detect doc xs r attacked in
  check bool "recovered after subtree deletion" true
    (Bitvec.equal message rv.Survivable.message);
  check bool "significant" true
    (Survivable.match_pvalue ~expected:message rv < 0.01)

let test_xml_reorder_siblings () =
  let doc, xs, r, marked = Lazy.force xml_prepared in
  let attacked =
    Adversary.apply_tree (Prng.create 37) Adversary.Reorder_siblings marked
  in
  check int "same size" (Wm_xml.Utree.size marked) (Wm_xml.Utree.size attacked);
  let rv, _ = xml_detect doc xs r attacked in
  check bool "recovered after reordering" true
    (Bitvec.equal message rv.Survivable.message)

(* --- determinism: same seed, same perturbed output -------------------- *)

let test_weight_attacks_deterministic () =
  let ws, scheme, _, marked = Lazy.force prepared in
  let qs = Local_scheme.query_system scheme in
  let active = Query_system.active qs in
  ignore ws;
  List.iter
    (fun a ->
      let run () =
        Adversary.apply (Prng.create 99) a ~active marked.Weighted.weights
      in
      check bool (Adversary.describe a) true (Weighted.equal (run ()) (run ())))
    [
      Adversary.Uniform_noise { amplitude = 2 };
      Adversary.Random_flips { count = 7; amplitude = 2 };
      Adversary.Rounding { multiple = 4 };
      Adversary.Constant_offset { delta = 3 };
    ]

let test_structural_attacks_deterministic () =
  let _, _, _, marked = Lazy.force prepared in
  List.iter
    (fun a ->
      let run () =
        Textio.to_string (Adversary.apply_structural (Prng.create 99) a marked)
      in
      check string (Adversary.describe_structural a) (run ()) (run ()))
    [
      Adversary.Delete_tuples { fraction = 0.3 };
      Adversary.Subset_sample { keep = 0.5 };
      Adversary.Insert_noise_tuples { count = 5; amplitude = 9 };
      Adversary.Shuffle_universe;
    ]

let test_tree_attacks_deterministic () =
  let _, _, _, marked = Lazy.force xml_prepared in
  List.iter
    (fun a ->
      let run () =
        Wm_xml.Xml.to_string
          (Wm_xml.Utree.to_xml (Adversary.apply_tree (Prng.create 99) a marked))
      in
      check string (Adversary.describe_tree a) (run ()) (run ()))
    [
      Adversary.Delete_subtrees { fraction = 0.3 };
      Adversary.Reorder_siblings;
      Adversary.Strip_values { fraction = 0.5 };
    ]

(* The attack suite itself is a pure function of its seed. *)
let test_attack_suite_deterministic () =
  let ws = Random_struct.travel (Prng.create 5) ~travels:60 ~transports:200 in
  let run () =
    match
      Attack_suite.run ~seed:42 ~redundancies:[ 1; 3 ] ~message_bits:4 ws
        Random_struct.travel_query
    with
    | Ok r -> Attack_suite.to_csv r
    | Error e -> failwith e
  in
  check string "identical CSV" (run ()) (run ())

let suite =
  [
    ("delete 20%: survivable vs aligned", `Slow, test_delete20_survivable_recovers);
    ("subset sample 50%", `Slow, test_subset_sample_recovers);
    ("insert noise rows", `Slow, test_insert_noise_recovers);
    ("shuffle the numbering", `Slow, test_shuffle_recovers);
    ("erasures partition the carriers", `Slow, test_erasure_partition);
    ("identity alignment is total", `Slow, test_identity_alignment_is_total);
    ("total wipe-out is all erasures", `Slow, test_all_erased);
    ("zero-trials binomial pins at 1", `Quick, test_binomial_zero_trials);
    ("xml identity alignment", `Slow, test_xml_identity_alignment);
    ("xml subtree deletion", `Slow, test_xml_delete_subtrees);
    ("xml sibling reordering", `Slow, test_xml_reorder_siblings);
    ("weight attacks deterministic", `Slow, test_weight_attacks_deterministic);
    ("structural attacks deterministic", `Slow, test_structural_attacks_deterministic);
    ("tree attacks deterministic", `Slow, test_tree_attacks_deterministic);
    ("attack suite deterministic", `Slow, test_attack_suite_deterministic);
  ]
