(* Tests for Wm_cliquewidth: the Theorem 4 substrate.  The load-bearing
   property is the correspondence psi(G) = psi~(T): adjacency decided by the
   hand-built parse-tree automaton must equal adjacency in the evaluated
   graph, on classic families and on random bounded-clique-width terms. *)

open Wm_cliquewidth
open Wm_watermark

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let list = Alcotest.list
let _ = (int, bool, fun x -> list x)

let edges_of g =
  let gf = Gaifman.of_structure g in
  List.concat_map
    (fun u -> List.map (fun v -> (u, v)) (Gaifman.neighbors gf u))
    (Structure.universe g)

let test_term_basics () =
  let t = Cw_term.clique 4 in
  check int "width 2" 2 (Cw_term.width t);
  check int "4 vertices" 4 (Cw_term.vertex_count t);
  check bool "valid" true (Cw_term.validate t = Ok ());
  check bool "eta same label invalid" true
    (Cw_term.validate (Cw_term.Add_edges (1, 1, Cw_term.Vertex 0)) <> Ok ())

let test_clique_eval () =
  let g = Cw_term.eval (Cw_term.clique 5) in
  check int "5 vertices" 5 (Structure.size g);
  let gf = Gaifman.of_structure g in
  List.iter
    (fun v -> check int "degree 4" 4 (Gaifman.degree gf v))
    (Structure.universe g)

let test_path_eval () =
  let g = Cw_term.eval (Cw_term.path 6) in
  check int "6 vertices" 6 (Structure.size g);
  let gf = Gaifman.of_structure g in
  let degrees = List.sort compare (List.map (Gaifman.degree gf) (Structure.universe g)) in
  check (list int) "path degrees" [ 1; 1; 2; 2; 2; 2 ] degrees;
  (* connected *)
  check int "one component" 1 (List.length (Gaifman.connected_components gf))

let test_parse_tree_shape () =
  let labels = 2 in
  let tree = Cw_parse.to_tree ~labels (Cw_term.clique 3) in
  let nodes = Cw_parse.vertex_nodes tree in
  check int "3 vertex leaves" 3 (Array.length nodes);
  Array.iter
    (fun v -> check bool "leaf" true (Wm_trees.Btree.is_leaf tree v))
    nodes

let test_weights_transport () =
  let labels = 2 in
  let term = Cw_term.clique 4 in
  let tree = Cw_parse.to_tree ~labels term in
  let w = Weighted.of_list 1 (List.init 4 (fun i -> (Tuple.singleton i, 10 * i))) in
  let tw = Cw_parse.vertex_weights tree w in
  let back = Cw_parse.weights_to_graph tree tw in
  List.iter
    (fun i -> check int "roundtrip" (10 * i) (Weighted.get_elt back i))
    [ 0; 1; 2; 3 ]

let adjacency_matches term labels =
  let g = Cw_term.eval term in
  let gf = Gaifman.of_structure g in
  List.for_all
    (fun u ->
      Cw_adjacency.neighbors_via_tree ~labels term u = Gaifman.neighbors gf u)
    (Structure.universe g)

let test_adjacency_clique () =
  check bool "K4" true (adjacency_matches (Cw_term.clique 4) 2)

let test_adjacency_path () =
  check bool "P7" true (adjacency_matches (Cw_term.path 7) 3)

let test_adjacency_relabel_chain () =
  (* Relabeling between the eta and the leaves must be tracked. *)
  let open Cw_term in
  let term =
    Add_edges (0, 2, Relabel (1, 2, Union (Vertex 0, Vertex 1)))
  in
  check bool "relabel then connect" true (adjacency_matches term 3);
  let g = eval term in
  check bool "edge exists" true
    (Relation.mem (Tuple.pair 0 1) (Structure.relation g "E"))

let test_adjacency_automaton_size () =
  let auto, _ = Cw_adjacency.automaton ~labels:3 in
  (* 2 (k+1)^2 + 1 = 33 states for k = 3: degree-independent. *)
  check int "states" 33 (Wm_trees.Dta.nstates auto)

let test_theorem4_scheme_on_clique () =
  (* Cliques: clique-width 2, degree n-1.  Theorem 4 watermarks them via
     the parse tree with certified distortion 1 on the adjacency query. *)
  let labels = 2 in
  let n = 40 in
  let term = Cw_term.clique n in
  let tree = Cw_parse.to_tree ~labels term in
  let q = Cw_adjacency.query ~labels in
  match Tree_scheme.prepare tree q with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      check bool "capacity >= 1" true (Tree_scheme.capacity scheme >= 1);
      let graph_w =
        Weighted.of_list 1 (List.init n (fun i -> (Tuple.singleton i, 100 + i)))
      in
      let tw = Cw_parse.vertex_weights tree graph_w in
      let cap = min 4 (Tree_scheme.capacity scheme) in
      let message = Wm_util.Codec.random (Wm_util.Prng.create 3) cap in
      let marked_tw = Tree_scheme.mark scheme message tw in
      (* Distortion on the *graph* query f(u) = sum of neighbor weights. *)
      let marked_gw = Cw_parse.weights_to_graph tree marked_tw in
      let g = Cw_term.eval term in
      let gf = Gaifman.of_structure g in
      let f w u =
        List.fold_left (fun s v -> s + Weighted.get_elt w v) 0 (Gaifman.neighbors gf u)
      in
      List.iter
        (fun u ->
          check bool "graph distortion <= 1" true
            (abs (f marked_gw u - f graph_w u) <= 1))
        (Structure.universe g);
      let decoded =
        Tree_scheme.detect_weights scheme ~original:tw ~suspect:marked_tw
          ~length:cap
      in
      check bool "detected" true (Wm_util.Bitvec.equal decoded message)

(* --- tree decompositions (the tree-width leg of Theorem 4) ------------- *)

let ring n =
  Structure.add_pairs (Structure.create Schema.graph n) "E"
    (List.concat (List.init n (fun i -> [ (i, (i + 1) mod n); ((i + 1) mod n, i) ])))

let random_tree_graph seed n =
  let g = Wm_util.Prng.create seed in
  Structure.add_pairs (Structure.create Schema.graph n) "E"
    (List.concat
       (List.init (n - 1) (fun i ->
            let p = Wm_util.Prng.int g (i + 1) in
            [ (i + 1, p); (p, i + 1) ])))

let test_treewidth_families () =
  let tree = random_tree_graph 3 20 in
  let td = Treewidth.by_min_degree tree in
  check bool "tree decomposition valid" true (Treewidth.validate tree td = Ok ());
  check int "tree width 1" 1 (Treewidth.width td);
  let rg = ring 12 in
  let td = Treewidth.by_min_degree rg in
  check bool "ring decomposition valid" true (Treewidth.validate rg td = Ok ());
  check int "ring width 2" 2 (Treewidth.width td);
  let k5 = Cw_term.eval (Cw_term.clique 5) in
  check int "clique width n-1" 4 (Treewidth.heuristic_width k5);
  let grid = (Wm_workload.Grid.structure ~w:5 ~h:4).Weighted.graph in
  let td = Treewidth.by_min_degree grid in
  check bool "grid decomposition valid" true (Treewidth.validate grid td = Ok ());
  check bool "grid width >= min(w,h)" true (Treewidth.width td >= 4)

let test_treewidth_validate_rejects () =
  let tree = random_tree_graph 5 8 in
  (* A decomposition that misses an edge. *)
  let bad =
    { Treewidth.bags = Array.init 8 (fun i -> [ i ]);
      edges = List.init 7 (fun i -> (i, i + 1)) }
  in
  check bool "missing edges rejected" true (Treewidth.validate tree bad <> Ok ());
  (* A cyclic bag graph. *)
  let td = Treewidth.by_min_degree tree in
  let cyclic = { td with Treewidth.edges = (0, 1) :: td.Treewidth.edges } in
  check bool "cyclic rejected" true (Treewidth.validate tree cyclic <> Ok ())

let test_of_tree_graph () =
  let g = random_tree_graph 9 15 in
  match Cw_term.of_tree_graph g with
  | None -> Alcotest.fail "tree not recognized"
  | Some (term, mapping) ->
      check bool "cwd <= 3" true (Cw_term.width term <= 3);
      check int "all vertices" 15 (Cw_term.vertex_count term);
      (* The evaluated graph is isomorphic to the input via [mapping]. *)
      let h = Cw_term.eval term in
      let gf = Gaifman.of_structure g and hf = Gaifman.of_structure h in
      for v = 0 to 14 do
        let img = List.sort compare (List.map (fun u -> mapping.(u)) (Gaifman.neighbors hf v)) in
        check (list int) "neighbors match" (Gaifman.neighbors gf mapping.(v)) img
      done

let test_of_tree_graph_rejects_cycles () =
  check bool "ring rejected" true (Cw_term.of_tree_graph (ring 6) = None)

let test_tw1_to_watermark_pipeline () =
  (* Theorem 4's chain for tree-width 1: tree graph -> cw term -> parse
     tree -> marked, with the graph adjacency query preserved. *)
  let g = random_tree_graph 13 60 in
  match Cw_term.of_tree_graph g with
  | None -> Alcotest.fail "not a tree"
  | Some (term, mapping) ->
      let labels = 3 in
      let tree = Cw_parse.to_tree ~labels term in
      let q = Cw_adjacency.query ~labels in
      (match Tree_scheme.prepare tree q with
      | Error e -> Alcotest.fail e
      | Ok scheme ->
          let n = Cw_term.vertex_count term in
          (* weights indexed by *term* vertex ids; the owner's real weights
             are on structure elements, carried over via [mapping]. *)
          let gw =
            Weighted.of_list 1
              (List.init n (fun i -> (Tuple.singleton i, 300 + mapping.(i))))
          in
          let tw = Cw_parse.vertex_weights tree gw in
          let cap = min 3 (Tree_scheme.capacity scheme) in
          check bool "capacity" true (cap >= 1);
          let message = Wm_util.Codec.random (Wm_util.Prng.create 2) cap in
          let marked = Tree_scheme.mark scheme message tw in
          let decoded =
            Tree_scheme.detect_weights scheme ~original:tw ~suspect:marked
              ~length:cap
          in
          check bool "roundtrip" true (Wm_util.Bitvec.equal decoded message))

let prop_min_degree_always_valid =
  QCheck.Test.make ~count:30 ~name:"min-degree decomposition is always valid"
    QCheck.(pair (int_range 2 10) (int_range 1 500))
    (fun (n, seed) ->
      let g = Wm_util.Prng.create seed in
      let edges =
        List.concat
          (List.init (2 * n) (fun _ ->
               let a = Wm_util.Prng.int g n and b = Wm_util.Prng.int g n in
               if a = b then [] else [ (a, b); (b, a) ]))
      in
      let s = Structure.add_pairs (Structure.create Schema.graph n) "E" edges in
      Treewidth.validate s (Treewidth.by_min_degree s) = Ok ())

let test_min_fill_families () =
  let tree = random_tree_graph 11 20 in
  let td = Treewidth.by_min_fill tree in
  check bool "tree decomposition valid" true (Treewidth.validate tree td = Ok ());
  check int "tree width 1" 1 (Treewidth.width td);
  let rg = ring 12 in
  let td = Treewidth.by_min_fill rg in
  check bool "ring decomposition valid" true (Treewidth.validate rg td = Ok ());
  check int "ring width 2" 2 (Treewidth.width td);
  let grid = (Wm_workload.Grid.structure ~w:5 ~h:4).Weighted.graph in
  let td = Treewidth.by_min_fill grid in
  check bool "grid decomposition valid" true (Treewidth.validate grid td = Ok ());
  (* min-fill never loses to min-degree on these chordal-ish families *)
  check bool "grid width sane" true
    (Treewidth.width td >= 4
    && Treewidth.width td <= Treewidth.width (Treewidth.by_min_degree grid))

let test_of_sphere () =
  (* of_sphere over the caller's CSR graph = the structure-level
     entry points, both heuristics *)
  let g = random_tree_graph 17 14 in
  let gf = Gaifman.of_structure g in
  let td = Treewidth.of_sphere gf in
  check bool "valid" true (Treewidth.validate g td = Ok ());
  check int "min-degree agree"
    (Treewidth.width (Treewidth.by_min_degree g))
    (Treewidth.width td);
  let tf = Treewidth.of_sphere ~heuristic:Tdecomp.Min_fill gf in
  check bool "min-fill valid" true (Treewidth.validate g tf = Ok ());
  check int "min-fill agree"
    (Treewidth.width (Treewidth.by_min_fill g))
    (Treewidth.width tf)

let test_disconnected_decomposition () =
  (* two triangles plus two isolated elements: the decomposition must
     still be one tree over the bags and pass the full validator *)
  let s =
    Structure.add_pairs (Structure.create Schema.graph 8) "E"
      [ (0, 1); (1, 0); (1, 2); (2, 1); (2, 0); (0, 2);
        (3, 4); (4, 3); (4, 5); (5, 4); (5, 3); (3, 5) ]
  in
  List.iter
    (fun (name, td) ->
      check bool (name ^ " valid on disconnected") true
        (Treewidth.validate s td = Ok ());
      check int (name ^ " width 2") 2 (Treewidth.width td))
    [ ("min-degree", Treewidth.by_min_degree s);
      ("min-fill", Treewidth.by_min_fill s) ]

let prop_min_fill_always_valid =
  QCheck.Test.make ~count:30 ~name:"min-fill decomposition is always valid"
    QCheck.(pair (int_range 2 10) (int_range 1 500))
    (fun (n, seed) ->
      let g = Wm_util.Prng.create seed in
      let edges =
        List.concat
          (List.init (2 * n) (fun _ ->
               let a = Wm_util.Prng.int g n and b = Wm_util.Prng.int g n in
               if a = b then [] else [ (a, b); (b, a) ]))
      in
      let s = Structure.add_pairs (Structure.create Schema.graph n) "E" edges in
      Treewidth.validate s (Treewidth.by_min_fill s) = Ok ())

(* --- distance-2 query ----------------------------------------------- *)

let distance2_matches term labels =
  let g = Cw_term.eval term in
  let gf = Gaifman.of_structure g in
  let n = Structure.size g in
  let tree = Cw_parse.to_tree ~labels term in
  let nodes = Cw_parse.vertex_nodes tree in
  let q = Cw_adjacency.distance2_query ~labels in
  let truth u v =
    List.exists
      (fun w ->
        w <> u && w <> v
        && List.mem u (Gaifman.neighbors gf w)
        && List.mem v (Gaifman.neighbors gf w))
      (Structure.universe g)
  in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      let auto =
        Wm_trees.Tree_query.member q tree
          (Tuple.singleton nodes.(u))
          (Tuple.singleton nodes.(v))
      in
      if auto <> truth u v then ok := false
    done
  done;
  !ok

let test_distance2_cw2_chain () =
  (* A width-2 chain-like term (caterpillar of cliques). *)
  let open Cw_term in
  let term =
    Relabel (1, 0,
      Add_edges (0, 1,
        Union (clique 3, Relabel (0, 1, clique 2))))
  in
  check bool "width-2 compound" true (distance2_matches term 2)

let test_distance2_clique () =
  (* In K_n (n >= 3) every pair, including u = v, has a common neighbor. *)
  check bool "K5 distance 2" true (distance2_matches (Cw_term.clique 5) 2)

let test_distance2_scheme () =
  (* The tree scheme runs on the distance-2 query too — any
     automaton-definable query is watermarkable (Theorem 5). *)
  let labels = 2 in
  let term = Cw_term.clique 80 in
  let tree = Cw_parse.to_tree ~labels term in
  let q = Cw_adjacency.distance2_query ~labels in
  match Tree_scheme.prepare tree q with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let n = Cw_term.vertex_count term in
      let gw = Weighted.of_list 1 (List.init n (fun i -> (Tuple.singleton i, 40 + i))) in
      let tw = Cw_parse.vertex_weights tree gw in
      let cap = min 3 (Tree_scheme.capacity scheme) in
      check bool "capacity" true (cap >= 1);
      let message = Wm_util.Codec.random (Wm_util.Prng.create 8) cap in
      let marked = Tree_scheme.mark scheme message tw in
      let qs = Tree_scheme.query_system scheme in
      check bool "distance <= 1" true (Distortion.global qs tw marked <= 1);
      check bool "roundtrip" true
        (Wm_util.Bitvec.equal message
           (Tree_scheme.detect_weights scheme ~original:tw ~suspect:marked
              ~length:cap))

let test_make_reachable_matches_eager () =
  (* The lazy reachable-state constructor recognizes the same language as
     the eagerly tabulated adjacency automaton (on trees: reachable
     equivalence suffices). *)
  let labels = 2 in
  let eager, alpha = Cw_adjacency.automaton ~labels in
  let lazy_q = Cw_adjacency.query ~labels in
  ignore alpha;
  let g = Wm_util.Prng.create 4 in
  for _ = 1 to 10 do
    let term = Cw_term.random g ~labels ~vertices:(2 + Wm_util.Prng.int g 8) in
    let tree = Cw_parse.to_tree ~labels term in
    let nodes = Cw_parse.vertex_nodes tree in
    Array.iter
      (fun a ->
        Array.iter
          (fun v ->
            let peb =
              Wm_trees.Alphabet.labeler (Wm_trees.Tree_query.alpha lazy_q) tree
                [ (0, a); (1, v) ]
            in
            check bool "same acceptance"
              (Wm_trees.Dta.accepts eager tree ~label_of:peb)
              (Wm_trees.Tree_query.member lazy_q tree (Tuple.singleton a)
                 (Tuple.singleton v)))
          nodes)
      nodes
  done

let prop_distance2_random_terms =
  QCheck.Test.make ~count:15 ~name:"distance-2 automaton matches the graph"
    QCheck.(pair (int_range 1 300) (int_range 2 8))
    (fun (seed, vertices) ->
      let g = Wm_util.Prng.create seed in
      let term = Cw_term.random g ~labels:2 ~vertices in
      distance2_matches term 2)

let prop_adjacency_random_terms =
  QCheck.Test.make ~count:25 ~name:"psi(G) = psi~(T) on random terms"
    QCheck.(pair (int_range 1 500) (int_range 2 10))
    (fun (seed, vertices) ->
      let g = Wm_util.Prng.create seed in
      let term = Cw_term.random g ~labels:3 ~vertices in
      adjacency_matches term 3)

let prop_clique_width_bound =
  QCheck.Test.make ~count:30 ~name:"random terms stay within the label budget"
    QCheck.(int_range 1 300)
    (fun seed ->
      let g = Wm_util.Prng.create seed in
      let term = Cw_term.random g ~labels:4 ~vertices:(2 + Wm_util.Prng.int g 10) in
      Cw_term.width term <= 4 && Cw_term.validate term = Ok ())

let suite =
  [
    ("term basics", `Quick, test_term_basics);
    ("clique evaluation", `Quick, test_clique_eval);
    ("path evaluation", `Quick, test_path_eval);
    ("parse tree shape", `Quick, test_parse_tree_shape);
    ("weight transport", `Quick, test_weights_transport);
    ("adjacency on cliques", `Quick, test_adjacency_clique);
    ("adjacency on paths", `Quick, test_adjacency_path);
    ("adjacency through relabeling", `Quick, test_adjacency_relabel_chain);
    ("automaton size is degree-free", `Quick, test_adjacency_automaton_size);
    ("theorem 4 scheme on a clique", `Slow, test_theorem4_scheme_on_clique);
    ("tree decompositions of families", `Quick, test_treewidth_families);
    ("decomposition validator rejects", `Quick, test_treewidth_validate_rejects);
    ("min-fill decompositions of families", `Quick, test_min_fill_families);
    ("of_sphere = structure entry points", `Quick, test_of_sphere);
    ("decompositions of disconnected structures", `Quick,
     test_disconnected_decomposition);
    ("trees have clique-width <= 3", `Quick, test_of_tree_graph);
    ("of_tree_graph rejects cycles", `Quick, test_of_tree_graph_rejects_cycles);
    ("tree-width-1 watermark pipeline", `Slow, test_tw1_to_watermark_pipeline);
    ("distance-2 on a width-2 compound", `Quick, test_distance2_cw2_chain);
    ("distance-2 on cliques", `Quick, test_distance2_clique);
    ("distance-2 watermarking", `Slow, test_distance2_scheme);
    ("make_reachable = eager tabulation", `Quick, test_make_reachable_matches_eager);
    QCheck_alcotest.to_alcotest prop_distance2_random_terms;
    QCheck_alcotest.to_alcotest prop_min_degree_always_valid;
    QCheck_alcotest.to_alcotest prop_min_fill_always_valid;
    QCheck_alcotest.to_alcotest prop_adjacency_random_terms;
    QCheck_alcotest.to_alcotest prop_clique_width_bound;
  ]
