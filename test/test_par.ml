(* Tests for Wm_par.Pool: the combinators' determinism contract (every
   job count produces the jobs=1 result, bit for bit), exception
   propagation through a batch, pool survival after a failed batch, and
   determinism of every parallelized call site — neighborhood indexing,
   the detectors, the attack grid. *)

open Wm_watermark
open Wm_workload
module Pool = Wm_par.Pool

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let job_counts = [ 1; 2; 4 ]

(* --- combinators ----------------------------------------------------- *)

let prop_map_deterministic =
  QCheck.Test.make ~count:50 ~name:"parallel_map = sequential map, all jobs"
    QCheck.(pair (list small_int) small_int)
    (fun (xs, salt) ->
      let a = Array.of_list xs in
      let f x = (x * 2654435761) lxor salt in
      let expected = Array.map f a in
      List.for_all (fun j -> Pool.parallel_map ~jobs:j f a = expected) job_counts)

let prop_mapi_deterministic =
  QCheck.Test.make ~count:50 ~name:"parallel_mapi sees the right indices"
    QCheck.(list small_int)
    (fun xs ->
      let a = Array.of_list xs in
      let f i x = (i, x, i * x) in
      let expected = Array.mapi f a in
      List.for_all (fun j -> Pool.parallel_mapi ~jobs:j f a = expected) job_counts)

let prop_reduce_ordered =
  (* A non-commutative combine establishes that the reduction runs in
     index order regardless of which domain computed which chunk. *)
  QCheck.Test.make ~count:50 ~name:"parallel_reduce combines in index order"
    QCheck.(list (int_range 0 999))
    (fun xs ->
      let a = Array.of_list xs in
      let map x = string_of_int x in
      let combine acc s = acc ^ "," ^ s in
      let expected = Array.fold_left (fun acc x -> combine acc (map x)) "" a in
      List.for_all
        (fun j -> Pool.parallel_reduce ~jobs:j ~map ~combine ~init:"" a = expected)
        job_counts)

let prop_map_list_order =
  QCheck.Test.make ~count:50 ~name:"map_list preserves list order"
    QCheck.(list small_int)
    (fun xs ->
      let expected = List.map succ xs in
      List.for_all (fun j -> Pool.map_list ~jobs:j succ xs = expected) job_counts)

let test_nested_batches () =
  (* Tasks that themselves submit batches: the caller-helping queue must
     not deadlock, and determinism must hold through the nesting. *)
  let outer =
    Pool.parallel_map ~jobs:4
      (fun row ->
        Pool.parallel_map ~jobs:4 (fun c -> (row * 10) + c) [| 0; 1; 2 |])
      [| 1; 2; 3; 4; 5 |]
  in
  check bool "nested result" true
    (outer = [| [| 10; 11; 12 |]; [| 20; 21; 22 |]; [| 30; 31; 32 |];
                [| 40; 41; 42 |]; [| 50; 51; 52 |] |])

(* --- configuration --------------------------------------------------- *)

let test_set_jobs_roundtrip () =
  let d = Pool.default_jobs () in
  Pool.set_jobs (Some 3);
  check int "override" 3 (Pool.jobs ());
  Pool.set_jobs (Some 0);
  check int "clamped to 1" 1 (Pool.jobs ());
  Pool.set_jobs None;
  check int "back to default" d (Pool.jobs ())

let test_pool_grows_on_demand () =
  (* Warm the pool up small, then ask for more: the missing worker
     domains must be spawned, not silently clamped to the first-call
     size (the E20 strong-scaling bug). *)
  Pool.set_jobs (Some 1);
  ignore (Pool.parallel_map ~jobs:2 (fun x -> x + 1) (Array.init 64 Fun.id));
  let before = Pool.pool_size () in
  let want = max 8 (before + 2) in
  Pool.set_jobs (Some want);
  (* A spin barrier: every task waits until [want] of them run at once,
     which is only possible with [want] runners.  A clamped pool fails
     the reached-check after the bounded spin instead of hanging. *)
  let running = Atomic.make 0 in
  let reached =
    Pool.parallel_map ~jobs:want
      (fun _ ->
        ignore (Atomic.fetch_and_add running 1);
        let budget = ref 2_000_000_000 in
        while Atomic.get running < want && !budget > 0 do
          decr budget;
          Domain.cpu_relax ()
        done;
        Atomic.get running >= want)
      (Array.make want ())
  in
  Pool.set_jobs None;
  check int "pool grew" want (Pool.pool_size ());
  check bool "all runners live concurrently" true
    (Array.for_all Fun.id reached)

let test_concurrent_cache_misses () =
  (* Query_system.result_set on tuples outside [params] writes the shared
     memo: hammer one fresh (non-precomputed) system from many domains and
     compare against a cold sequential reference.  Under WMARK_JOBS>=2 the
     unguarded hashtable version of this crashes or corrupts. *)
  let ws = Random_struct.travel (Wm_util.Prng.create 11) ~travels:6 ~transports:18 in
  let q = Random_struct.travel_query in
  let g = ws.Weighted.graph in
  let probes =
    Array.of_list (Neighborhood.all_tuples g ~arity:1)
  in
  let reference =
    let qs = Query_system.of_relational g q in
    Array.map (fun a -> Query_system.result_set qs a) probes
  in
  List.iter
    (fun j ->
      let qs = Query_system.of_relational g q in
      (* every domain asks every probe, all misses at first *)
      let got =
        Pool.parallel_map ~jobs:j
          (fun _ -> Array.map (fun a -> Query_system.result_set qs a) probes)
          (Array.make (2 * j) ())
      in
      Array.iter
        (fun per_domain ->
          check bool
            (Printf.sprintf "jobs=%d all result sets agree" j)
            true
            (Array.for_all2 Tuple.Set.equal reference per_domain))
        got)
    job_counts

(* --- exceptions ------------------------------------------------------ *)

exception Boom of int

let test_exception_propagates () =
  let raised =
    try
      ignore
        (Pool.parallel_map ~jobs:4
           (fun i -> if i = 37 then raise (Boom i) else i)
           (Array.init 100 Fun.id));
      None
    with Boom i -> Some i
  in
  check bool "the task's own exception surfaces" true (raised = Some 37)

let test_pool_survives_failure () =
  (try
     ignore (Pool.parallel_map ~jobs:4 (fun _ -> failwith "boom") [| 1; 2; 3 |])
   with Failure _ -> ());
  (* the failed batch must not wedge the queue or leak tasks *)
  let a = Array.init 1000 Fun.id in
  check bool "pool still answers correctly" true
    (Pool.parallel_map ~jobs:4 (fun x -> x + 1) a = Array.map (fun x -> x + 1) a)

(* --- parallelized call sites ----------------------------------------- *)

let prop_index_deterministic =
  QCheck.Test.make ~count:20
    ~name:"Neighborhood.index: same types and reps for all jobs"
    QCheck.(pair (int_range 10 60) (int_range 1 2))
    (fun (n, rho) ->
      let ws =
        Random_struct.graph (Wm_util.Prng.create (n + rho)) ~n ~max_degree:4
          ~edges:(2 * n)
      in
      let g = ws.Weighted.graph in
      let reference = Neighborhood.index_universe ~jobs:1 g ~rho ~arity:1 in
      List.for_all
        (fun j ->
          let ix = Neighborhood.index_universe ~jobs:j g ~rho ~arity:1 in
          Tuple.Map.equal ( = ) reference.Neighborhood.types
            ix.Neighborhood.types
          && reference.Neighborhood.representatives
             = ix.Neighborhood.representatives)
        job_counts)

let prop_index_matches_naive =
  (* The bucketed index (cheap invariants + certificates + in-bucket iso)
     against the definition: all-pairs Neighborhood.equivalent with
     first-occurrence numbering. *)
  QCheck.Test.make ~count:15
    ~name:"Neighborhood.index = naive all-pairs classification"
    QCheck.(pair (int_range 5 30) (int_range 1 2))
    (fun (n, rho) ->
      let ws =
        Random_struct.graph (Wm_util.Prng.create (7 * n)) ~n ~max_degree:4
          ~edges:(2 * n)
      in
      let g = ws.Weighted.graph in
      let tuples = Neighborhood.all_tuples g ~arity:1 in
      let gf = Gaifman.of_structure g in
      let reps = ref [] in
      let naive =
        List.map
          (fun c ->
            let rec find = function
              | [] ->
                  reps := !reps @ [ c ];
                  List.length !reps - 1
              | (r, ty) :: rest ->
                  if Neighborhood.equivalent g gf ~rho c r then ty
                  else find rest
            in
            (c, find (List.mapi (fun i r -> (r, i)) !reps)))
          tuples
      in
      let ix = Neighborhood.index g ~rho tuples in
      Neighborhood.ntp ix = List.length !reps
      && List.for_all (fun (c, ty) -> Neighborhood.type_of ix c = ty) naive)

let prop_detector_deterministic =
  QCheck.Test.make ~count:10 ~name:"Detector.read: same verdict for all jobs"
    QCheck.(int_range 40 120)
    (fun n ->
      let ws = Random_struct.regular_rings (Wm_util.Prng.create n) ~n in
      match Local_scheme.prepare ws Wm_workload.Paper_examples.figure1_query with
      | Error _ -> QCheck.assume_fail ()
      | Ok scheme ->
          let cap = Local_scheme.capacity scheme in
          let g = Wm_util.Prng.create (n + 1) in
          let message = Wm_util.Codec.random g cap in
          let marked = Local_scheme.mark scheme message ws.Weighted.weights in
          let noisy =
            Adversary.apply g
              (Adversary.Random_flips { count = n / 10; amplitude = 1 })
              ~active:
                (Query_system.active (Local_scheme.query_system scheme))
              marked
          in
          let read j =
            Detector.read_weights ~jobs:j (Local_scheme.pairs scheme)
              ~original:ws.Weighted.weights ~suspect:noisy ~length:cap
          in
          let reference = read 1 in
          List.for_all (fun j -> read j = reference) job_counts)

let test_attack_suite_deterministic () =
  let ws =
    Random_struct.travel (Wm_util.Prng.create 5) ~travels:30 ~transports:90
  in
  let run j =
    match
      Attack_suite.run ~jobs:j ~seed:5 ~redundancies:[ 1; 2 ] ~message_bits:4
        ws Random_struct.travel_query
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let reference = run 1 in
  check bool "rows non-empty" true (reference.Attack_suite.rows <> []);
  List.iter
    (fun j -> check bool (Printf.sprintf "jobs=%d" j) true (run j = reference))
    [ 2; 4 ]

let test_survivable_deterministic () =
  let ws =
    Random_struct.travel (Wm_util.Prng.create 9) ~travels:30 ~transports:90
  in
  match Local_scheme.prepare ws Random_struct.travel_query with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let times = 2 and bits = 4 in
      let base = Robust.of_local scheme in
      let message = Wm_util.Codec.of_int ~bits 0b1011 in
      let marked = Robust.mark base ~times message ws.Weighted.weights in
      let suspect =
        Adversary.apply_structural
          (Wm_util.Prng.create 10)
          (Adversary.Delete_tuples { fraction = 0.15 })
          { ws with Weighted.weights = marked }
      in
      let detect j =
        Survivable.detect_structure ~jobs:j scheme ~times ~length:bits
          ~original:ws ~suspect
      in
      let reference = detect 1 in
      List.iter
        (fun j ->
          check bool (Printf.sprintf "jobs=%d" j) true (detect j = reference))
        [ 2; 4 ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_map_deterministic;
    QCheck_alcotest.to_alcotest prop_mapi_deterministic;
    QCheck_alcotest.to_alcotest prop_reduce_ordered;
    QCheck_alcotest.to_alcotest prop_map_list_order;
    ("nested batches do not deadlock", `Quick, test_nested_batches);
    ("set_jobs round-trip", `Quick, test_set_jobs_roundtrip);
    ("pool grows on demand", `Quick, test_pool_grows_on_demand);
    ("concurrent cache misses agree", `Quick, test_concurrent_cache_misses);
    ("a raising task propagates its exception", `Quick, test_exception_propagates);
    ("the pool survives a failed batch", `Quick, test_pool_survives_failure);
    QCheck_alcotest.to_alcotest prop_index_deterministic;
    QCheck_alcotest.to_alcotest prop_index_matches_naive;
    QCheck_alcotest.to_alcotest prop_detector_deterministic;
    ("attack suite identical across jobs", `Quick, test_attack_suite_deterministic);
    ("survivable detection identical across jobs", `Quick, test_survivable_deterministic);
  ]
