(* The flat-memory core (DESIGN.md 5.12): columnar [Relation] and
   [Weighted] must be bit-identical to the frozen pre-flat
   representations ([Relation_ref], [Weighted_ref]) on random op
   sequences — including sequences long enough to cross the overlay
   compaction threshold — and the Structure universe/name fast paths
   must agree with the list/scan semantics they replaced.  Also pins
   the PR 8 semantic bugfix: [Weighted.local_distance] accounts for
   differing defaults off-support. *)

open Wm_util

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let rand_tuple g ar range = Tuple.of_list (List.init ar (fun _ -> Prng.int g range))

let rand_tuples g ~count ar range = List.init count (fun _ -> rand_tuple g ar range)

(* --- Relation == Relation_ref ---------------------------------------- *)

let same_relation (r : Relation.t) (rr : Relation_ref.t) =
  Relation.arity r = Relation_ref.arity rr
  && Relation.cardinal r = Relation_ref.cardinal rr
  && Relation.to_list r = Relation_ref.to_list rr

let prop_relation_ops =
  QCheck.Test.make ~count:120 ~name:"Relation op sequences == Relation_ref"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let g = Prng.create (0xF1A7 + seed) in
      let ar = 1 + Prng.int g 3 in
      let range = 2 + Prng.int g 8 in
      (* sometimes start from a bulk build big enough that add/remove
         sequences cross the compaction threshold *)
      let init =
        if Prng.bernoulli g 0.5 then rand_tuples g ~count:(Prng.int g 300) ar range
        else []
      in
      let r = ref (Relation.of_list ar init)
      and rr = ref (Relation_ref.of_list ar init) in
      let ok = ref (same_relation !r !rr) in
      let steps = 1 + Prng.int g 150 in
      for _ = 1 to steps do
        (match Prng.int g 8 with
        | 0 | 1 | 2 ->
            let t = rand_tuple g ar range in
            r := Relation.add t !r;
            rr := Relation_ref.add t !rr
        | 3 | 4 ->
            let t = rand_tuple g ar range in
            r := Relation.remove t !r;
            rr := Relation_ref.remove t !rr
        | 5 ->
            let parity = Prng.int g 2 in
            let p t = Array.fold_left ( + ) 0 t mod 2 = parity in
            r := Relation.filter p !r;
            rr := Relation_ref.filter p !rr
        | 6 ->
            let m = 1 + Prng.int g range in
            let f x = x mod m in
            r := Relation.rename f !r;
            rr := Relation_ref.rename f !rr
        | _ ->
            let other = rand_tuples g ~count:(Prng.int g 40) ar range in
            r := Relation.union !r (Relation.of_list ar other);
            rr := Relation_ref.union !rr (Relation_ref.of_list ar other));
        ok := !ok && same_relation !r !rr
      done;
      (* membership probes, including wrong-arity tuples (false, no
         error — the Tuple.Set length-first compare contract) *)
      for _ = 1 to 30 do
        let t = rand_tuple g (1 + Prng.int g 4) range in
        ok := !ok && Relation.mem t !r = Relation_ref.mem t !rr
      done;
      ok := !ok && Relation.max_elt !r = Relation_ref.max_elt !rr;
      ok :=
        !ok
        && Relation.restrict (fun x -> x mod 2 = 0) !r |> Relation.to_list
           = (Relation_ref.restrict (fun x -> x mod 2 = 0) !rr
             |> Relation_ref.to_list);
      !ok)

let prop_relation_iter_flat =
  QCheck.Test.make ~count:80
    ~name:"Relation.iter_flat/iter/fold/equal agree with to_list"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let g = Prng.create (0xF2B8 + seed) in
      let ar = 1 + Prng.int g 3 in
      let range = 2 + Prng.int g 9 in
      let r0 = Relation.of_list ar (rand_tuples g ~count:(Prng.int g 200) ar range) in
      (* push a few edits through so the overlay path is exercised too *)
      let r =
        List.fold_left
          (fun r t -> if Prng.bernoulli g 0.5 then Relation.add t r else Relation.remove t r)
          r0
          (rand_tuples g ~count:(Prng.int g 20) ar range)
      in
      let viaflat = ref [] in
      Relation.iter_flat
        (fun buf off -> viaflat := Array.sub buf off ar :: !viaflat)
        r;
      let viaflat = List.rev !viaflat in
      viaflat = Relation.to_list r
      && Relation.fold (fun t acc -> t :: acc) r [] = List.rev (Relation.to_list r)
      && Relation.equal r (Relation.flatten r)
      && Relation.equal r (Relation.of_list ar (Relation.to_list r))
      && Relation.cardinal (Relation.flatten r) = Relation.cardinal r)

(* --- Weighted == Weighted_ref ---------------------------------------- *)

let same_weighted (w : Weighted.t) (wr : Weighted_ref.t) =
  Weighted.arity w = Weighted_ref.arity wr
  && Weighted.default w = Weighted_ref.default wr
  && Weighted.bindings w = Weighted_ref.bindings wr

let prop_weighted_ops =
  QCheck.Test.make ~count:120 ~name:"Weighted op sequences == Weighted_ref"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let g = Prng.create (0x3E16 + seed) in
      let ar = 1 + Prng.int g 2 in
      let range = 2 + Prng.int g 8 in
      let dflt = Prng.int g 5 in
      let init =
        List.init (Prng.int g 200) (fun _ -> (rand_tuple g ar range, Prng.int g 100))
      in
      let w = ref (Weighted.of_list ~default:dflt ar init)
      and wr = ref (Weighted_ref.of_list ~default:dflt ar init) in
      let ok = ref (same_weighted !w !wr) in
      let steps = 1 + Prng.int g 120 in
      for _ = 1 to steps do
        (match Prng.int g 4 with
        | 0 | 1 ->
            let t = rand_tuple g ar range and v = Prng.int g 100 in
            w := Weighted.set !w t v;
            wr := Weighted_ref.set !wr t v
        | 2 ->
            let t = rand_tuple g ar range and d = Prng.int g 5 - 2 in
            w := Weighted.add_delta !w t d;
            wr := Weighted_ref.add_delta !wr t d
        | _ ->
            let marks =
              List.init (Prng.int g 10) (fun _ ->
                  (rand_tuple g ar range, if Prng.bernoulli g 0.5 then 1 else -1))
            in
            w := Weighted.apply_marks !w marks;
            wr := Weighted_ref.apply_marks !wr marks);
        ok := !ok && same_weighted !w !wr
      done;
      for _ = 1 to 30 do
        let t = rand_tuple g ar range in
        ok := !ok && Weighted.get !w t = Weighted_ref.get !wr t
      done;
      (* a second assignment: distance/distortion/equal must agree *)
      let init2 =
        List.init (Prng.int g 60) (fun _ -> (rand_tuple g ar range, Prng.int g 100))
      in
      let d2 = Prng.int g 5 in
      let w2 = Weighted.of_list ~default:d2 ar init2
      and wr2 = Weighted_ref.of_list ~default:d2 ar init2 in
      ok := !ok && Weighted.local_distance !w w2 = Weighted_ref.local_distance !wr wr2;
      ok :=
        !ok
        && Weighted.is_local_distortion ~c:3 !w w2
           = Weighted_ref.is_local_distortion ~c:3 !wr wr2;
      ok := !ok && Weighted.equal !w w2 = Weighted_ref.equal !wr wr2;
      ok := !ok && Weighted.equal !w !w && Weighted_ref.equal !wr !wr;
      !ok)

(* --- the local_distance default-delta bugfix ------------------------- *)

let test_local_distance_defaults () =
  (* equal supports, different defaults: the pre-PR 8 fold over the
     union of supports reported 0 here *)
  let t = Tuple.singleton 0 in
  let a = Weighted.set (Weighted.create ~default:0 1) t 5 in
  let b = Weighted.set (Weighted.create ~default:5 1) t 5 in
  check int "off-support default delta counts" 5 (Weighted.local_distance a b);
  check bool "not a 4-local distortion" false (Weighted.is_local_distortion ~c:4 a b);
  check bool "is a 5-local distortion" true (Weighted.is_local_distortion ~c:5 a b);
  (* empty supports entirely *)
  check int "empty assignments, defaults 2 vs 7" 5
    (Weighted.local_distance (Weighted.create ~default:2 1) (Weighted.create ~default:7 1));
  (* one-sided support still measured against the other default *)
  let c = Weighted.set (Weighted.create ~default:0 1) t 9 in
  check int "one-sided support vs default" 9
    (Weighted.local_distance c (Weighted.create ~default:0 1));
  (* equal keeps its guard: distance 0 and equal defaults *)
  check bool "equal same defaults" true
    (Weighted.equal (Weighted.create ~default:3 1) (Weighted.create ~default:3 1));
  check bool "different defaults never equal" false
    (Weighted.equal (Weighted.create ~default:3 1) (Weighted.create ~default:4 1));
  check bool "explicit default-valued entry stays an entry" true
    (Weighted.bindings (Weighted.set (Weighted.create 1) t 0) = [ (t, 0) ])

(* --- Structure universe / name fast paths ---------------------------- *)

let test_universe_iteration () =
  let schema = Schema.make ~weight_arity:1 [ { Schema.name = "E"; arity = 2 } ] in
  let g = Structure.create schema 7 in
  let via_iter = ref [] in
  Structure.iter_universe (fun x -> via_iter := x :: !via_iter) g;
  check (Alcotest.list int) "iter_universe ascending" (Structure.universe g)
    (List.rev !via_iter);
  check (Alcotest.list int) "fold_universe ascending"
    (Structure.universe g)
    (List.rev (Structure.fold_universe (fun x acc -> x :: acc) g []));
  let empty = Structure.create schema 0 in
  check int "empty fold" 0 (Structure.fold_universe (fun _ acc -> acc + 1) empty 0)

let test_elt_of_name () =
  let schema = Schema.make ~weight_arity:1 [ { Schema.name = "E"; arity = 2 } ] in
  let g = Structure.create schema 4 in
  (match Structure.elt_of_name g "a" with
  | _ -> Alcotest.fail "expected Not_found without names"
  | exception Not_found -> ());
  let g = Structure.with_names g [| "a"; "b"; "a"; "d" |] in
  check int "first name" 0 (Structure.elt_of_name g "a");
  check int "middle name" 1 (Structure.elt_of_name g "b");
  check int "last name" 3 (Structure.elt_of_name g "d");
  (match Structure.elt_of_name g "zz" with
  | _ -> Alcotest.fail "expected Not_found for unknown name"
  | exception Not_found -> ());
  (* index follows edits: appended elements are findable, removed not *)
  let g1, _ = Structure.apply_edit g (Structure.Add_element (Some "e")) in
  check int "appended name" 4 (Structure.elt_of_name g1 "e");
  let g2, _ = Structure.apply_edit g1 (Structure.Remove_element 4) in
  (match Structure.elt_of_name g2 "e" with
  | _ -> Alcotest.fail "expected Not_found after removal"
  | exception Not_found -> ());
  let g3 = Structure.with_default_names (Structure.create schema 3) in
  check int "default names indexed" 2 (Structure.elt_of_name g3 "2")

(* --- Textio round-trips over the flat representations ---------------- *)

let prop_textio_roundtrip =
  QCheck.Test.make ~count:40 ~name:"Textio round-trip on flat reps"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let g = Prng.create (0x7E10 + seed) in
      let n = 3 + Prng.int g 12 in
      let ws =
        Wm_workload.Random_struct.graph g ~n ~max_degree:4 ~edges:(1 + Prng.int g (2 * n))
      in
      let ws =
        if Prng.bernoulli g 0.5 then
          { ws with Weighted.graph = Structure.with_default_names ws.Weighted.graph }
        else ws
      in
      let ws' = Textio.of_string (Textio.to_string ws) in
      Structure.equal ws.Weighted.graph ws'.Weighted.graph
      && Weighted.equal ws.Weighted.weights ws'.Weighted.weights
      && Textio.to_string ws = Textio.to_string ws')

let test_textio_bulk_errors () =
  (* the bulk loader must report the same errors, same lines, same
     precedence (range, then symbol, then arity) as the per-line fold *)
  let base = "schema E/2\nweight_arity 1\nsize 3\n" in
  let err text =
    match Textio.of_string_result text with
    | Ok _ -> Alcotest.fail "expected parse error"
    | Error e -> Textio.error_to_string e
  in
  check Alcotest.string "range error"
    "line 4: bad tuple for E: Structure.add_tuple: element out of range"
    (err (base ^ "rel E 0 7\n"));
  check Alcotest.string "unknown relation" "line 4: unknown relation \"F\""
    (err (base ^ "rel F 0 1\n"));
  check Alcotest.string "arity error"
    "line 4: bad tuple for E: Relation.add: arity mismatch"
    (err (base ^ "rel E 0 1 2\n"));
  check Alcotest.string "range beats symbol beats arity"
    "line 4: bad tuple for F: Structure.add_tuple: element out of range"
    (err (base ^ "rel F 9\n"));
  check Alcotest.string "first bad line wins"
    "line 4: unknown relation \"F\""
    (err (base ^ "rel F 0 1\nrel E 0 7\n"));
  check Alcotest.string "weight arity error"
    "line 4: bad weight: Weighted.set: arity mismatch"
    (err (base ^ "weight 0 1 5\n"));
  (* duplicate rel lines dedupe exactly like repeated add *)
  match Textio.of_string_result (base ^ "rel E 0 1\nrel E 0 1\nrel E 1 2\n") with
  | Error e -> Alcotest.fail (Textio.error_to_string e)
  | Ok ws ->
      check int "dedup cardinal" 2
        (Relation.cardinal (Structure.relation ws.Weighted.graph "E"))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_relation_ops;
    QCheck_alcotest.to_alcotest prop_relation_iter_flat;
    QCheck_alcotest.to_alcotest prop_weighted_ops;
    Alcotest.test_case "local_distance default deltas" `Quick
      test_local_distance_defaults;
    Alcotest.test_case "universe iteration" `Quick test_universe_iteration;
    Alcotest.test_case "elt_of_name" `Quick test_elt_of_name;
    QCheck_alcotest.to_alcotest prop_textio_roundtrip;
    Alcotest.test_case "textio bulk-load errors" `Quick test_textio_bulk_errors;
  ]
