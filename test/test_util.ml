(* Unit and property tests for Wm_util: PRNG determinism, bit vectors,
   message codec, statistics, table rendering. *)

open Wm_util

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let int64 = Alcotest.int64
let float = Alcotest.float
let list = Alcotest.list
let array = Alcotest.array
let option = Alcotest.option
let _ = (int, bool, string, int64, float, (fun x -> list x), (fun x -> array x), (fun x -> option x))

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_split_independent () =
  let g = Prng.create 7 in
  let child = Prng.split g in
  (* The child stream must differ from the parent's continuation. *)
  let xs = List.init 8 (fun _ -> Prng.bits64 g) in
  let ys = List.init 8 (fun _ -> Prng.bits64 child) in
  check bool "streams differ" true (xs <> ys)

let test_prng_int_range () =
  let g = Prng.create 1 in
  for _ = 1 to 1000 do
    let x = Prng.int g 17 in
    check bool "in range" true (x >= 0 && x < 17)
  done

let test_prng_bernoulli_bias () =
  let g = Prng.create 3 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli g 0.25 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  check bool "close to 0.25" true (abs_float (p -. 0.25) < 0.02)

let test_prng_shuffle_permutes () =
  let g = Prng.create 5 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (array int) "same multiset" (Array.init 50 Fun.id) sorted

let test_prng_sample_distinct () =
  let g = Prng.create 9 in
  let s = Prng.sample g 10 (Array.init 30 Fun.id) in
  check int "ten drawn" 10 (Array.length s);
  let uniq = List.sort_uniq compare (Array.to_list s) in
  check int "distinct" 10 (List.length uniq)

let test_bitvec_get_set () =
  let v = Bitvec.create 70 in
  Bitvec.set v 0 true;
  Bitvec.set v 63 true;
  Bitvec.set v 69 true;
  check bool "bit 0" true (Bitvec.get v 0);
  check bool "bit 1" false (Bitvec.get v 1);
  check bool "bit 63" true (Bitvec.get v 63);
  check bool "bit 69" true (Bitvec.get v 69);
  Bitvec.set v 63 false;
  check bool "cleared" false (Bitvec.get v 63);
  check int "popcount" 2 (Bitvec.popcount v)

let test_bitvec_ops () =
  let a = Bitvec.of_list 10 [ 1; 3; 5 ] in
  let b = Bitvec.of_list 10 [ 3; 5; 7 ] in
  check (list int) "union" [ 1; 3; 5; 7 ] (Bitvec.to_list (Bitvec.union a b));
  check (list int) "inter" [ 3; 5 ] (Bitvec.to_list (Bitvec.inter a b));
  check (list int) "diff" [ 1 ] (Bitvec.to_list (Bitvec.diff a b));
  check bool "subset no" false (Bitvec.is_subset a b);
  check bool "subset yes" true
    (Bitvec.is_subset (Bitvec.inter a b) a)

let test_bitvec_trailing_bits_ignored () =
  (* Bits past [len] in the final byte must not affect ops or popcount. *)
  let a = Bitvec.of_list 3 [ 0; 1; 2 ] in
  let c = Bitvec.diff a (Bitvec.create 3) in
  check int "popcount after diff" 3 (Bitvec.popcount c);
  check bool "equal" true (Bitvec.equal a c)

let test_codec_int_roundtrip () =
  List.iter
    (fun n ->
      check int "roundtrip" n (Codec.to_int (Codec.of_int ~bits:16 n)))
    [ 0; 1; 2; 255; 256; 65535 ]

let test_codec_string_roundtrip () =
  List.iter
    (fun s -> check string "roundtrip" s (Codec.to_string (Codec.of_string s)))
    [ ""; "a"; "server-17"; "\x00\xff" ]

let test_codec_majority () =
  let m = Codec.of_bool_list [ true; false; true ] in
  let r = Codec.repeat ~times:3 m in
  (* Corrupt one copy of each bit; majority must still decode. *)
  Bitvec.set r 0 false;
  Bitvec.set r 4 true;
  Bitvec.set r 8 false;
  let d = Codec.majority_decode ~times:3 r in
  check (list bool) "decoded" [ true; false; true ] (Codec.to_bool_list d)

let test_codec_hamming () =
  let a = Codec.of_bool_list [ true; true; false; false ] in
  let b = Codec.of_bool_list [ true; false; true; false ] in
  check int "hamming" 2 (Codec.hamming a b)

let test_stats_basic () =
  let a = [| 1.; 2.; 3.; 4. |] in
  check (float 1e-9) "mean" 2.5 (Stats.mean a);
  check (float 1e-9) "variance" 1.25 (Stats.variance a);
  let lo, hi = Stats.min_max a in
  check (float 1e-9) "min" 1. lo;
  check (float 1e-9) "max" 4. hi;
  check (float 1e-9) "median-ish" 2. (Stats.quantile 0.5 a)

let test_stats_rate () =
  check (float 1e-9) "rate" 0.5 (Stats.rate 1 2);
  check (float 1e-9) "rate zero den" 0. (Stats.rate 1 0)

let raises_invalid name f =
  check bool name true
    (match f () with exception Invalid_argument _ -> true | _ -> false)

let test_stats_imax () =
  check int "empty" 0 (Stats.imax [||]);
  check int "mixed" 7 (Stats.imax [| 3; 7; 1 |]);
  check int "singleton" 4 (Stats.imax [| 4 |]);
  (* the old fold-from-0 clamped this to 0 *)
  check int "all negative" (-2) (Stats.imax [| -5; -2; -9 |])

let test_stats_histogram_guard () =
  raises_invalid "bins 0" (fun () -> Stats.histogram ~bins:0 [| 1.0 |]);
  raises_invalid "bins negative" (fun () -> Stats.histogram ~bins:(-3) [| 1.0 |]);
  check int "valid still works" 2 (Array.length (Stats.histogram ~bins:2 [| 0.; 1. |]))

let test_codec_validation () =
  raises_invalid "of_int bits > 62" (fun () -> Codec.of_int ~bits:63 1);
  raises_invalid "of_int bits < 0" (fun () -> Codec.of_int ~bits:(-1) 0);
  raises_invalid "of_int overflow" (fun () -> Codec.of_int ~bits:4 16);
  raises_invalid "of_int negative" (fun () -> Codec.of_int ~bits:4 (-1));
  raises_invalid "to_int too long" (fun () -> Codec.to_int (Bitvec.create 63));
  raises_invalid "to_string ragged" (fun () -> Codec.to_string (Bitvec.create 3));
  raises_invalid "hamming mismatch" (fun () ->
      Codec.hamming (Bitvec.create 3) (Bitvec.create 4));
  raises_invalid "majority times 0" (fun () ->
      Codec.majority_decode ~times:0 (Bitvec.create 4));
  raises_invalid "majority ragged" (fun () ->
      Codec.majority_decode ~times:3 (Bitvec.create 4))

let test_codec_even_tie () =
  (* Two copies of [true], one flipped: the 1-1 tie decodes to false (the
     documented strict-majority bias). *)
  let r = Codec.repeat ~times:2 (Codec.of_bool_list [ true ]) in
  Bitvec.set r 1 false;
  check (list bool) "tie decodes false" [ false ]
    (Codec.to_bool_list (Codec.majority_decode ~times:2 r))

let test_texttab_render () =
  let t = Texttab.create [ "name"; "n" ] in
  Texttab.add_row t [ "alpha"; "1" ];
  Texttab.addf t "beta|23";
  let s = Texttab.render t in
  check bool "has header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  check bool "aligned right" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> l = "beta   23") lines)

(* Property tests *)

let prop_codec_int =
  QCheck.Test.make ~count:200 ~name:"codec int roundtrip"
    QCheck.(int_bound ((1 lsl 20) - 1))
    (fun n -> Codec.to_int (Codec.of_int ~bits:20 n) = n)

let prop_bitvec_of_to_list =
  QCheck.Test.make ~count:200 ~name:"bitvec of_list/to_list"
    QCheck.(list (int_bound 63))
    (fun ixs ->
      let ixs = List.sort_uniq compare ixs in
      Bitvec.to_list (Bitvec.of_list 64 ixs) = ixs)

let prop_union_popcount =
  QCheck.Test.make ~count:200 ~name:"inclusion-exclusion on popcount"
    QCheck.(pair (list (int_bound 63)) (list (int_bound 63)))
    (fun (xs, ys) ->
      let a = Bitvec.of_list 64 xs and b = Bitvec.of_list 64 ys in
      Bitvec.popcount (Bitvec.union a b) + Bitvec.popcount (Bitvec.inter a b)
      = Bitvec.popcount a + Bitvec.popcount b)

let prop_repeat_decode =
  QCheck.Test.make ~count:200 ~name:"repeat then majority_decode is identity"
    QCheck.(pair (list bool) (int_range 1 7))
    (fun (bits, times) ->
      QCheck.assume (bits <> []);
      let m = Codec.of_bool_list bits in
      Codec.to_bool_list (Codec.majority_decode ~times (Codec.repeat ~times m))
      = bits)

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng split independent", `Quick, test_prng_split_independent);
    ("prng int range", `Quick, test_prng_int_range);
    ("prng bernoulli bias", `Quick, test_prng_bernoulli_bias);
    ("prng shuffle permutes", `Quick, test_prng_shuffle_permutes);
    ("prng sample distinct", `Quick, test_prng_sample_distinct);
    ("bitvec get/set", `Quick, test_bitvec_get_set);
    ("bitvec boolean ops", `Quick, test_bitvec_ops);
    ("bitvec trailing bits", `Quick, test_bitvec_trailing_bits_ignored);
    ("codec int roundtrip", `Quick, test_codec_int_roundtrip);
    ("codec string roundtrip", `Quick, test_codec_string_roundtrip);
    ("codec majority decode", `Quick, test_codec_majority);
    ("codec hamming", `Quick, test_codec_hamming);
    ("stats basics", `Quick, test_stats_basic);
    ("stats rate", `Quick, test_stats_rate);
    ("stats imax", `Quick, test_stats_imax);
    ("stats histogram guard", `Quick, test_stats_histogram_guard);
    ("codec validation", `Quick, test_codec_validation);
    ("codec even tie", `Quick, test_codec_even_tie);
    ("texttab render", `Quick, test_texttab_render);
    QCheck_alcotest.to_alcotest prop_codec_int;
    QCheck_alcotest.to_alcotest prop_bitvec_of_to_list;
    QCheck_alcotest.to_alcotest prop_union_popcount;
    QCheck_alcotest.to_alcotest prop_repeat_decode;
  ]
