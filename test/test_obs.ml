(* Unit and property tests for the wm_obs observability layer: counters,
   timers and spans accumulate correctly across domains, and — the load-
   bearing contract — enabling collection never perturbs the computed
   results it observes. *)

module Obs = Wm_obs.Obs
open Wm_watermark
open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* The enable flag is process-global; every test restores what it found. *)
let with_stats on f =
  let was = Obs.enabled () in
  Obs.set_enabled on;
  Fun.protect ~finally:(fun () -> Obs.set_enabled was) f

let counter_value snap name =
  Option.value ~default:0 (List.assoc_opt name snap.Obs.counters)

let timer_calls snap name =
  match List.assoc_opt name snap.Obs.timers with
  | Some t -> t.Obs.calls
  | None -> 0

(* Handles are created once per name; tests share this pool. *)
let c_test = Obs.counter "test.counter"
let t_test = Obs.timer "test.timer"
let t_span = Obs.timer "test.span"

let test_counter_basics () =
  with_stats true @@ fun () ->
  let since = Obs.snapshot () in
  Obs.incr c_test;
  Obs.add c_test 4;
  let d = Obs.diff ~since (Obs.snapshot ()) in
  check int "accumulated" 5 (counter_value d "test.counter")

let test_disabled_is_noop () =
  with_stats false @@ fun () ->
  let since = Obs.snapshot () in
  Obs.incr c_test;
  Obs.add c_test 100;
  check int "timer returns value" 3 (Obs.time t_test (fun () -> 3));
  check int "span returns value" 7 (Obs.span t_span (fun () -> 7));
  let d = Obs.diff ~since (Obs.snapshot ()) in
  check int "counter untouched" 0 (counter_value d "test.counter");
  check int "timer untouched" 0 (timer_calls d "test.timer");
  check bool "no spans" true
    (not (List.exists (fun e -> e.Obs.sp_name = "test.span") d.Obs.spans))

let test_timer_and_span () =
  with_stats true @@ fun () ->
  let since = Obs.snapshot () in
  check int "timer passthrough" 42 (Obs.time t_test (fun () -> 42));
  let v =
    Obs.span t_span (fun () -> Obs.span ~detail:"inner" t_span (fun () -> 9))
  in
  check int "span passthrough" 9 v;
  let d = Obs.diff ~since (Obs.snapshot ()) in
  check int "timer called once" 1 (timer_calls d "test.timer");
  check int "span timer called twice" 2 (timer_calls d "test.span");
  let events =
    List.filter (fun e -> e.Obs.sp_name = "test.span") d.Obs.spans
  in
  check int "two span events" 2 (List.length events);
  check bool "nesting depths 0 and 1" true
    (List.sort compare (List.map (fun e -> e.Obs.sp_depth) events) = [ 0; 1 ]);
  check bool "detail carried" true
    (List.exists (fun e -> e.Obs.sp_detail = Some "inner") events)

let test_timer_charges_on_raise () =
  with_stats true @@ fun () ->
  let since = Obs.snapshot () in
  (try Obs.time t_test (fun () -> failwith "boom") with Failure _ -> ());
  let d = Obs.diff ~since (Obs.snapshot ()) in
  check int "raising call still counted" 1 (timer_calls d "test.timer")

let test_counter_across_domains () =
  with_stats true @@ fun () ->
  let since = Obs.snapshot () in
  let xs =
    Wm_par.Pool.parallel_map ~jobs:4
      (fun x ->
        Obs.incr c_test;
        x * x)
      (Array.init 100 Fun.id)
  in
  check int "last square" (99 * 99) xs.(99);
  let d = Obs.diff ~since (Obs.snapshot ()) in
  check int "all domain-local increments merged" 100
    (counter_value d "test.counter")

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_report_rendering () =
  with_stats true @@ fun () ->
  Obs.incr c_test;
  ignore (Obs.span ~detail:"cell" t_span (fun () -> ()));
  let snap = Obs.snapshot () in
  let s = Wm_util.Obs_report.render snap in
  check bool "mentions counter" true (contains s "test.counter");
  check bool "mentions span" true (contains s "test.span");
  let json = Wm_util.Json.to_string (Wm_util.Obs_report.trace_json snap) in
  check bool "trace schema" true (contains json "qpwm-trace/1")

(* --- the transparency contract ---------------------------------------- *)

(* Neighborhood indexing: stats on vs. off, same types, same
   representatives — the instrumented fast-path bookkeeping (bucket
   pre-sizing, iso_avoided arithmetic) must not leak into results. *)
let prop_index_transparent =
  QCheck.Test.make ~count:15 ~name:"obs on/off: neighborhood index identical"
    QCheck.(pair (int_bound 10_000) (int_range 20 60))
    (fun (seed, n) ->
      let ws =
        Random_struct.graph (Prng.create seed) ~n ~max_degree:4 ~edges:(2 * n)
      in
      let g = ws.Weighted.graph in
      let run on =
        with_stats on @@ fun () -> Neighborhood.index_universe g ~rho:1 ~arity:1
      in
      let off = run false and on = run true in
      Tuple.Map.equal ( = ) off.Neighborhood.types on.Neighborhood.types
      && off.Neighborhood.representatives = on.Neighborhood.representatives)

(* Detector: a mark embedded and read back under both settings produces
   the same verdict record, field for field. *)
let prop_detector_transparent =
  QCheck.Test.make ~count:10 ~name:"obs on/off: detector verdict identical"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let ws = Random_struct.regular_rings (Prng.create seed) ~n:40 in
      match
        Local_scheme.prepare
          ~options:{ Local_scheme.default_options with rho = Some 1 }
          ws Paper_examples.figure1_query
      with
      | Error e -> QCheck.Test.fail_report e
      | Ok scheme ->
          let cap = min 8 (Local_scheme.capacity scheme) in
          QCheck.assume (cap > 0);
          let message = Codec.random (Prng.create (seed + 1)) cap in
          let marked = Local_scheme.mark scheme message ws.Weighted.weights in
          let read on =
            with_stats on @@ fun () ->
            Detector.read_weights (Local_scheme.pairs scheme)
              ~original:ws.Weighted.weights ~suspect:marked ~length:cap
          in
          read false = read true)

let suite =
  [
    ("counter basics", `Quick, test_counter_basics);
    ("disabled is a no-op", `Quick, test_disabled_is_noop);
    ("timer and span", `Quick, test_timer_and_span);
    ("timer charges on raise", `Quick, test_timer_charges_on_raise);
    ("counters merge across domains", `Quick, test_counter_across_domains);
    ("report rendering", `Quick, test_report_rendering);
    QCheck_alcotest.to_alcotest prop_index_transparent;
    QCheck_alcotest.to_alcotest prop_detector_transparent;
  ]
