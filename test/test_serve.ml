(* The serving layer (lib/serve): protocol round-trips, scheduler
   determinism across job counts, and the two sharding identities
   (sharded index = unsharded index, sharded detect = unsharded
   detect). *)

open Wm_watermark

module Serve = Wm_serve
module Protocol = Serve.Protocol
module Engine = Serve.Engine
module Shard = Serve.Shard
module Store = Serve.Store

let check = Alcotest.check
let bool = Alcotest.bool
let string = Alcotest.string
let int = Alcotest.int
let _ = (bool, string, int)

let rings n seed =
  Wm_workload.Random_struct.regular_rings (Prng.create seed) ~n

(* --- protocol -------------------------------------------------------- *)

let sample_requests =
  [
    Protocol.Ping;
    Protocol.Stats;
    Protocol.Shutdown;
    Protocol.Info "d1";
    Protocol.Put ("d1", "schema E/2\nsize 3\n");
    Protocol.Gen { id = "g"; n = 30; seed = 7 };
    Protocol.Load ("d1", None);
    Protocol.Load ("d1", Some "/tmp/x.qpwm");
    Protocol.Snapshot ("d1", Some "/tmp/y.qpwm");
    Protocol.Prepare
      {
        id = "d1";
        seed = 5;
        rho = Some 2;
        epsilon = 0.5;
        shard = true;
        qspec = Protocol.Identity;
      };
    Protocol.Prepare
      {
        id = "d1";
        seed = 5;
        rho = None;
        epsilon = 1.0;
        shard = false;
        qspec =
          Protocol.Fo
            {
              params = [ "u" ];
              results = [ "v" ];
              formula = "exists w. E(u,w) & E(w,v)";
            };
      };
    Protocol.Mark ("d1", "10110");
    Protocol.Detect { id = "d1"; length = 5; shard = true };
    Protocol.Setw { id = "d1"; value = 42; elt = [ 3 ] };
    Protocol.Update ("d1", "insert E 0 1\ninsert E 1 0\n");
    Protocol.Protect { id = "d1"; key = 7; redundancy = 2; group_size = 4 };
    Protocol.Audit "d1";
    Protocol.Repair "d1";
    Protocol.Fingerprint
      { id = "d1"; master = 99; length = Some 16; times = None; prefix = "r";
        count = 4 };
    Protocol.Trace
      { id = "d1"; master = 99; length = None; times = Some 3; prefix = "u";
        count = 10; alpha = 0.05; suspect = Some "schema E/2\nsize 3\n" };
    Protocol.Trace
      { id = "d1"; master = 1; length = None; times = None; prefix = "r";
        count = 2; alpha = 0.01; suspect = None };
    Protocol.Batch [ "ping"; "info d1" ];
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Protocol.decode_request (Protocol.encode_request req) with
      | Error m -> Alcotest.failf "%s: %s" (Protocol.op_name req) m
      | Ok req' ->
          check bool
            (Printf.sprintf "%s round-trips" (Protocol.op_name req))
            true (req = req'))
    sample_requests

let test_request_malformed () =
  List.iter
    (fun payload ->
      match Protocol.decode_request payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed request %S" payload)
    [
      "";
      "frobnicate";
      "info";
      "info two ids";
      "info bad/id";
      "info .dotfirst";
      "gen d rings -5 1";
      "gen d trees 10 1";
      "prepare d x - 1.0 1 @identity";
      "prepare d 1 - 1.0 2 @identity";
      "prepare d 1 - 1.0 1 @fo u v";
      "mark d 10a1";
      "mark d";
      "detect d 0 1";
      "detect d 5 yes";
      "setw d 5";
      "protect d 1 0 4";
      "fingerprint d 1 - - r 0";
      "fingerprint d x - - r 4";
      "trace d 1 - - r 5 1.5";
      "trace d 1 - - r 0 0.01";
      "batch 2\nping";
      (* header/body count mismatch *)
    ]

let test_response_roundtrip () =
  let payload =
    Protocol.ok_payload "detect"
      [ ("message", "101"); ("confidence", "1.000000") ]
      ~body:"line1\nline2"
  in
  (match Protocol.decode_response payload with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check bool "ok status" true (r.Protocol.status = `Ok "detect");
      check string "field" "101"
        (Option.get (Protocol.field r "message"));
      check string "body" "line1\nline2" (Option.get r.Protocol.body));
  let nasty = "no such dataset \"x\u{0001}\n%\"" in
  match Protocol.decode_response (Protocol.err_payload nasty) with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check bool "err round-trips control bytes" true
        (r.Protocol.status = `Err nasty)

(* --- engine basics --------------------------------------------------- *)

let send engine req =
  match
    Protocol.decode_response
      (Engine.handle engine (Protocol.encode_request req))
  with
  | Ok r -> r
  | Error m -> Alcotest.failf "undecodable response: %s" m

let send_ok engine req =
  let r = send engine req in
  (match r.Protocol.status with
  | `Ok _ -> ()
  | `Err m -> Alcotest.failf "%s failed: %s" (Protocol.op_name req) m);
  r

let fget r k =
  match Protocol.field r k with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s" k

let setup_engine ?jobs ~n ~seed () =
  let engine = Engine.create ?jobs () in
  let _ = send_ok engine (Protocol.Gen { id = "d"; n; seed }) in
  let _ =
    send_ok engine
      (Protocol.Prepare
         {
           id = "d";
           seed = 11;
           rho = Some 1;
           epsilon = 1.0;
           shard = false;
           qspec = Protocol.Identity;
         })
  in
  engine

let test_mark_detect_cycle () =
  let engine = setup_engine ~n:120 ~seed:4 () in
  let _ = send_ok engine (Protocol.Mark ("d", "110100101")) in
  let r =
    send_ok engine (Protocol.Detect { id = "d"; length = 9; shard = false })
  in
  check string "decoded message" "110100101" (fget r "message");
  check string "all strong" "9" (fget r "strong");
  check string "marked verdict" "1" (fget r "marked");
  (* errors come back as err frames, not exceptions *)
  let r = send engine (Protocol.Detect { id = "nope"; length = 1; shard = false }) in
  check bool "unknown dataset is err" true
    (match r.Protocol.status with `Err _ -> true | `Ok _ -> false);
  let r = send engine (Protocol.Mark ("d", String.make 10_000 '1')) in
  check bool "overlong message is err" true
    (match r.Protocol.status with `Err _ -> true | `Ok _ -> false)

let test_setw_propagates_mark () =
  (* Theorem 7: a weights-only update of the original propagates to the
     published copy without disturbing the embedded bits. *)
  let engine = setup_engine ~n:90 ~seed:9 () in
  let _ = send_ok engine (Protocol.Mark ("d", "1011")) in
  let before =
    send_ok engine (Protocol.Detect { id = "d"; length = 4; shard = false })
  in
  let r = send_ok engine (Protocol.Setw { id = "d"; value = 500; elt = [ 2 ] }) in
  let published = int_of_string (fget r "published") in
  check bool "published keeps the mark delta" true
    (abs (published - 500) <= 1);
  let after =
    send_ok engine (Protocol.Detect { id = "d"; length = 4; shard = false })
  in
  check string "message survives setw" (fget before "message")
    (fget after "message");
  check string "still all strong" (fget before "strong") (fget after "strong")

let test_update_reprepares () =
  let engine = setup_engine ~n:60 ~seed:2 () in
  let _ = send_ok engine (Protocol.Mark ("d", "11")) in
  (* connect the first and last element: changes neighborhood types near
     the new edge, so the incremental re-preparation must run; the
     response says whether Theorem 8 lets the mark survive *)
  let r =
    send_ok engine (Protocol.Update ("d", "insert E 0 59\ninsert E 59 0\n"))
  in
  check string "size unchanged" "60" (fget r "size");
  check bool "dirty set reported" true (int_of_string (fget r "dirty") > 0);
  let tp = fget r "type_preserving" in
  check bool "decision is a flag" true (tp = "0" || tp = "1");
  (* the dataset is still serviceable after the update *)
  let r = send_ok engine (Protocol.Detect { id = "d"; length = 1; shard = false }) in
  check bool "detect still answers" true (String.length (fget r "message") = 1)

(* Fingerprint generation fans onto the pool; responses must be
   byte-identical at every job count, and tracing a planted copy through
   the endpoint must accuse exactly the planted recipient. *)
let test_fingerprint_trace_endpoints () =
  let e1 = setup_engine ~jobs:1 ~n:300 ~seed:6 () in
  let e2 = setup_engine ~jobs:2 ~n:300 ~seed:6 () in
  let raw e req = Engine.handle e (Protocol.encode_request req) in
  let fpreq =
    Protocol.Fingerprint
      { id = "d"; master = 7; length = Some 64; times = None; prefix = "r";
        count = 20 }
  in
  check string "fingerprint bytes identical across job counts" (raw e1 fpreq)
    (raw e2 fpreq);
  let r = send_ok e1 fpreq in
  check string "count" "20" (fget r "count");
  check int "one digest line per copy" 20
    (List.length (String.split_on_char '\n' (Option.get r.Protocol.body)));
  (* rebuild the engine's scheme locally (same options, same identity
     query system) to plant a copy for r5 *)
  let ws = rings 300 6 in
  let qs =
    Query_system.of_custom
      ~params:(List.init (Structure.size ws.Weighted.graph) Tuple.singleton)
      ~result_set:(fun p -> Tuple.Set.singleton p)
      ~weight_arity:1
  in
  let q = Parser.query_of_string ~params:[ "u" ] ~results:[ "v" ] "u = v" in
  let options =
    { Local_scheme.default_options with seed = 11; rho = Some 1; epsilon = 1.0 }
  in
  let scheme =
    match Local_scheme.prepare ~options ~qs ws q with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  let fp =
    match Fingerprint.of_local ~length:64 ~master:7 scheme with
    | Ok f -> f
    | Error m -> Alcotest.fail m
  in
  let planted =
    Textio.to_string
      { ws with
        Weighted.weights = Fingerprint.mark_for fp "r5" ws.Weighted.weights }
  in
  let treq suspect =
    Protocol.Trace
      { id = "d"; master = 7; length = Some 64; times = None; prefix = "r";
        count = 20; alpha = 0.01; suspect }
  in
  let r = send_ok e1 (treq (Some planted)) in
  check string "accused the planted recipient" "r5" (fget r "accused");
  check string "trace bytes identical across job counts"
    (raw e1 (treq (Some planted)))
    (raw e2 (treq (Some planted)));
  let r = send_ok e1 (treq None) in
  check string "clean current copy accuses nobody" "" (fget r "accused")

let test_snapshot_load_roundtrip () =
  let dir = Filename.temp_file "qpwm_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let engine = Engine.create ~dir () in
  let _ = send_ok engine (Protocol.Gen { id = "d"; n = 40; seed = 8 }) in
  let _ = send_ok engine (Protocol.Snapshot ("d", None)) in
  let engine2 = Engine.create ~dir () in
  let r = send_ok engine2 (Protocol.Load ("d", None)) in
  check string "size survives the round-trip" "40" (fget r "size");
  let info = send_ok engine2 (Protocol.Info "d") in
  check string "components survive" (fget (send_ok engine (Protocol.Info "d")) "components")
    (fget info "components")

(* --- scheduler determinism ------------------------------------------- *)

(* A deterministic mixed schedule (reads, writers, batches) must produce
   byte-identical response lists whatever the engine's job count.  The
   stats endpoint is excluded (its body is a live measurement table). *)
let schedule g n =
  let req i =
    match Prng.int g 8 with
    | 0 -> Protocol.Ping
    | 1 -> Protocol.Info "d"
    | 2 -> Protocol.Detect { id = "d"; length = 1 + Prng.int g 8; shard = Prng.bool g }
    | 3 ->
        Protocol.Mark
          ("d", String.init (1 + Prng.int g 8) (fun _ -> if Prng.bool g then '1' else '0'))
    | 4 -> Protocol.Setw { id = "d"; value = Prng.int g 1000; elt = [ Prng.int g 100 ] }
    | 5 ->
        Protocol.Batch
          (List.init
             (1 + Prng.int g 6)
             (fun _ ->
               Protocol.encode_request
                 (Protocol.Detect
                    { id = "d"; length = 1 + Prng.int g 8; shard = Prng.bool g })))
    | 6 -> Protocol.Info (if i mod 2 = 0 then "d" else "missing")
    | _ -> Protocol.Detect { id = "missing"; length = 1; shard = false }
  in
  List.init n req

let responses ~jobs reqs =
  let engine = setup_engine ?jobs ~n:100 ~seed:13 () in
  List.map (fun r -> Engine.handle engine (Protocol.encode_request r)) reqs

let test_schedule_deterministic () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:20 ~name:"jobs=1 vs jobs=2 schedules"
       QCheck.(pair small_nat (int_bound 25))
       (fun (seed, n) ->
         let reqs = schedule (Prng.create (0xD0 + seed)) n in
         responses ~jobs:(Some 1) reqs = responses ~jobs:(Some 2) reqs))

(* --- sharding identities --------------------------------------------- *)

let test_shard_index_equals_unsharded () =
  List.iter
    (fun (n, seed) ->
      let ws = rings n seed in
      let g = ws.Weighted.graph in
      let gf = Gaifman.of_structure g in
      let plan = Shard.plan gf in
      let params = List.init n Tuple.singleton in
      let reference = Neighborhood.index ~jobs:1 g ~rho:1 params in
      match Shard.index ~jobs:2 g gf plan ~rho:1 params with
      | Error m -> Alcotest.fail m
      | Ok ix ->
          check bool "type maps equal" true
            (Tuple.Map.equal ( = ) reference.Neighborhood.types
               ix.Neighborhood.types);
          check bool "representatives equal" true
            (reference.Neighborhood.representatives
            = ix.Neighborhood.representatives);
          check int "rho" reference.Neighborhood.rho ix.Neighborhood.rho;
          check int "arity" reference.Neighborhood.arity ix.Neighborhood.arity)
    [ (30, 1); (97, 2); (256, 3) ]

let test_shard_index_rejects_wide_params () =
  let ws = rings 30 5 in
  let g = ws.Weighted.graph in
  let gf = Gaifman.of_structure g in
  match Shard.index g gf (Shard.plan gf) ~rho:1 [ Tuple.pair 0 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity-2 parameters must not shard"

let verdicts_equal (a : Detector.verdict) (b : Detector.verdict) =
  Bitvec.equal a.Detector.decoded b.Detector.decoded
  && Bitvec.equal a.Detector.erasure b.Detector.erasure
  && a.Detector.strong = b.Detector.strong
  && a.Detector.weak = b.Detector.weak
  && a.Detector.silent = b.Detector.silent
  && a.Detector.erased = b.Detector.erased
  && a.Detector.confidence = b.Detector.confidence

let test_shard_detect_equals_unsharded () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:30 ~name:"sharded read_weights"
       QCheck.(pair small_nat small_nat)
       (fun (seed, noise) ->
         let n = 80 + (7 * (seed mod 13)) in
         let ws = rings n (seed + 1) in
         let gf = Gaifman.of_structure ws.Weighted.graph in
         let scheme =
           let options =
             { Local_scheme.default_options with rho = Some 1; seed = 3 }
           in
           match
             Local_scheme.prepare ~options ws
               (Parser.query_of_string ~params:[ "u" ] ~results:[ "v" ]
                  "u = v")
           with
           | Ok s -> s
           | Error m -> QCheck.Test.fail_reportf "prepare: %s" m
         in
         let capacity = Local_scheme.capacity scheme in
         let length = 1 + (seed mod capacity) in
         let g = Prng.create (0xAB + seed) in
         let message = Codec.random g length in
         let marked =
           Local_scheme.mark scheme message ws.Weighted.weights
         in
         (* damage a few weights so the carrier classes differ *)
         let suspect =
           List.fold_left
             (fun w _ ->
               Weighted.set_elt w (Prng.int g n) (100 + Prng.int g 900))
             marked
             (List.init (noise mod 8) Fun.id)
         in
         let pairs = Local_scheme.pairs scheme in
         let original = ws.Weighted.weights in
         let reference =
           Detector.read_weights ~jobs:1 pairs ~original ~suspect ~length
         in
         let sharded =
           Shard.read_weights ~jobs:2 (Shard.plan gf) pairs ~original
             ~suspect ~length
         in
         verdicts_equal reference sharded))

let test_engine_sharded_prepare_matches () =
  (* through the full protocol: preparing with shard=1 must report the
     same scheme and decode the same bits as shard=0 *)
  let run shard =
    let engine = Engine.create () in
    let _ = send_ok engine (Protocol.Gen { id = "d"; n = 150; seed = 21 }) in
    let p =
      send_ok engine
        (Protocol.Prepare
           {
             id = "d";
             seed = 11;
             rho = Some 1;
             epsilon = 1.0;
             shard;
             qspec = Protocol.Identity;
           })
    in
    let _ = send_ok engine (Protocol.Mark ("d", "100111010")) in
    let d =
      send_ok engine (Protocol.Detect { id = "d"; length = 9; shard })
    in
    (fget p "capacity", fget p "ntp", fget p "pairs_available", d.Protocol.fields)
  in
  let c0, t0, a0, d0 = run false and c1, t1, a1, d1 = run true in
  check string "capacity" c0 c1;
  check string "ntp" t0 t1;
  check string "pairs_available" a0 a1;
  check bool "detect fields identical" true (d0 = d1)

let suite =
  [
    ("protocol request round-trip", `Quick, test_request_roundtrip);
    ("protocol malformed requests", `Quick, test_request_malformed);
    ("protocol response round-trip", `Quick, test_response_roundtrip);
    ("mark/detect cycle", `Quick, test_mark_detect_cycle);
    ("setw propagates the mark (Thm 7)", `Quick, test_setw_propagates_mark);
    ("structural update re-prepares", `Quick, test_update_reprepares);
    ("fingerprint/trace endpoints", `Quick, test_fingerprint_trace_endpoints);
    ("snapshot/load round-trip", `Quick, test_snapshot_load_roundtrip);
    ("schedule deterministic across jobs", `Quick, test_schedule_deterministic);
    ("sharded index = unsharded", `Quick, test_shard_index_equals_unsharded);
    ("sharded index rejects wide params", `Quick, test_shard_index_rejects_wide_params);
    ("sharded detect = unsharded (qcheck)", `Quick, test_shard_detect_equals_unsharded);
    ("engine sharded prepare matches", `Quick, test_engine_sharded_prepare_matches);
  ]
