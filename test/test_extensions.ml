(* Tests for the extension modules: aggregate-preserving distortion, the
   detection-statistics module, the multi-query scheme, k-party collusion,
   and the Textio serialization format. *)

open Wm_watermark
open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let float = Alcotest.float
let _ = (int, bool, string, float)

let fig = Paper_examples.figure1
let figq = Paper_examples.figure1_query

(* --- aggregates -------------------------------------------------------- *)

let test_aggregates_basic () =
  let qs = Query_system.of_relational fig.Weighted.graph figq in
  let w = fig.Weighted.weights in
  let a = Tuple.singleton 0 in
  (* W_a = {d, e}, both weigh 10. *)
  check (float 1e-9) "sum" 20. (Distortion.f_agg Distortion.Sum qs w a);
  check (float 1e-9) "mean" 10. (Distortion.f_agg Distortion.Mean qs w a);
  check (float 1e-9) "min" 10. (Distortion.f_agg Distortion.Min qs w a);
  check (float 1e-9) "max" 10. (Distortion.f_agg Distortion.Max qs w a)

let test_aggregates_pair_marking () =
  (* The claim of the "note" in Section 1: positive results survive the
     aggregate swap.  A (+1,-1) pair inside a result set moves the mean by
     0 and min/max by at most the local distortion 1. *)
  let qs = Query_system.of_relational fig.Weighted.graph figq in
  let w = fig.Weighted.weights in
  let marks = [ (Tuple.singleton 3, 1); (Tuple.singleton 4, -1) ] in
  let w' = Weighted.apply_marks w marks in
  check bool "mean distortion on W_a = 0" true
    (abs_float
       (Distortion.f_agg Distortion.Mean qs w' (Tuple.singleton 0)
       -. Distortion.f_agg Distortion.Mean qs w (Tuple.singleton 0))
    < 1e-9);
  check bool "global min distortion <= 1" true
    (Distortion.global_agg Distortion.Min qs w w' <= 1.0 +. 1e-9);
  check bool "global max distortion <= 1" true
    (Distortion.global_agg Distortion.Max qs w w' <= 1.0 +. 1e-9)

let prop_aggregate_bounds =
  QCheck.Test.make ~count:25 ~name:"1-local marks move min/max/mean by <= 1"
    QCheck.(int_range 1 300)
    (fun seed ->
      let g = Wm_util.Prng.create seed in
      let ws = Random_struct.regular_rings g ~n:(12 + Wm_util.Prng.int g 30) in
      let qs = Query_system.of_relational ws.Weighted.graph figq in
      let marks =
        List.filter_map
          (fun t ->
            if Wm_util.Prng.bernoulli g 0.3 then Some (t, Wm_util.Prng.pm_one g)
            else None)
          (Query_system.active qs)
      in
      let w' = Weighted.apply_marks ws.Weighted.weights marks in
      List.for_all
        (fun agg ->
          Distortion.global_agg agg qs ws.Weighted.weights w' <= 1.0 +. 1e-9)
        [ Distortion.Mean; Distortion.Min; Distortion.Max ]
      |> fun mins_ok ->
      (* Mean can exceed 1?  No: each weight moves by <= 1, so the mean of
         any set moves by <= 1; min/max likewise. *)
      mins_ok)

(* --- detector statistics ------------------------------------------------ *)

let scheme_of seed n =
  let ws = Random_struct.regular_rings (Wm_util.Prng.create seed) ~n in
  match
    Local_scheme.prepare
      ~options:{ Local_scheme.default_options with rho = Some 1 }
      ws figq
  with
  | Ok s -> (ws, s)
  | Error e -> Alcotest.fail e

let test_detector_clean_copy () =
  let ws, scheme = scheme_of 3 60 in
  let cap = min 8 (Local_scheme.capacity scheme) in
  let message = Wm_util.Codec.random (Wm_util.Prng.create 1) cap in
  let marked = Local_scheme.mark scheme message ws.Weighted.weights in
  let v =
    Detector.read_weights (Local_scheme.pairs scheme)
      ~original:ws.Weighted.weights ~suspect:marked ~length:cap
  in
  check int "all strong" cap v.Detector.strong;
  check (float 1e-9) "confidence 1" 1.0 v.Detector.confidence;
  check bool "marked verdict" true (Detector.is_marked v);
  check bool "p-value tiny" true
    (Detector.match_pvalue ~expected:message v < 0.01)

let test_detector_unrelated_data () =
  let ws, scheme = scheme_of 5 60 in
  let cap = min 8 (Local_scheme.capacity scheme) in
  (* An innocent server: weights identical to the original (a competitor
     with the same public data, never marked). *)
  let v =
    Detector.read_weights (Local_scheme.pairs scheme)
      ~original:ws.Weighted.weights ~suspect:ws.Weighted.weights ~length:cap
  in
  check int "all silent" cap v.Detector.silent;
  check bool "not marked" false (Detector.is_marked v);
  (* And a noisy innocent server: independent +-1 noise. *)
  let g = Wm_util.Prng.create 9 in
  let noisy =
    List.fold_left
      (fun w t -> Weighted.add_delta w t (Wm_util.Prng.int g 3 - 1))
      ws.Weighted.weights
      (Weighted.support ws.Weighted.weights)
  in
  let v' =
    Detector.read_weights (Local_scheme.pairs scheme)
      ~original:ws.Weighted.weights ~suspect:noisy ~length:cap
  in
  (* The decoded bits are coin flips; the p-value against any fixed id
     should not be extreme. *)
  let p = Detector.match_pvalue ~expected:(Wm_util.Codec.random g cap) v' in
  check bool "no confident match" true (p > 0.001)

let test_binomial_tail () =
  check (float 1e-9) "k=0" 1. (Detector.binomial_tail ~trials:10 ~successes:0);
  check (float 1e-9) "k>n" 0. (Detector.binomial_tail ~trials:10 ~successes:11);
  check (float 1e-6) "all heads" (1. /. 1024.)
    (Detector.binomial_tail ~trials:10 ~successes:10);
  (* P[X >= 5 | n=10] > 0.5 (includes the median). *)
  check bool "majority mass" true
    (Detector.binomial_tail ~trials:10 ~successes:5 > 0.5)

let test_binomial_tail_degenerate_p () =
  (* p = 0 / p = 1 used to produce NaN (0 * -inf inside the log-space
     sum); the endpoints are now exact. *)
  check (float 1e-9) "p=0" 0.
    (Detector.binomial_tail_p ~p:0. ~trials:10 ~successes:3);
  check (float 1e-9) "p=1" 1.
    (Detector.binomial_tail_p ~p:1. ~trials:10 ~successes:10);
  check (float 1e-9) "p=1 partial" 1.
    (Detector.binomial_tail_p ~p:1. ~trials:10 ~successes:3);
  check (float 1e-9) "p=0 k=0" 1.
    (Detector.binomial_tail_p ~p:0. ~trials:10 ~successes:0);
  let finite p =
    let x = Detector.binomial_tail_p ~p ~trials:50 ~successes:25 in
    Float.is_finite x && x >= 0. && x <= 1.
  in
  check bool "interior values stay probabilities" true
    (List.for_all finite [ 1e-12; 0.25; 0.5; 0.999999 ]);
  let rejects p =
    match Detector.binomial_tail_p ~p ~trials:10 ~successes:5 with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check bool "p < 0 rejected" true (rejects (-0.1));
  check bool "p > 1 rejected" true (rejects 1.5);
  check bool "nan rejected" true (rejects Float.nan)

(* --- multi-query scheme ------------------------------------------------- *)

let two_away =
  Query.make ~params:[ "u" ] ~results:[ "v" ]
    Fo.(exists "w" (atom "E" [ "u"; "w" ] &&& atom "E" [ "w"; "v" ]))

let test_multi_roundtrip () =
  let ws = Random_struct.regular_rings (Wm_util.Prng.create 8) ~n:60 in
  let options = { Local_scheme.default_options with rho = Some 2 } in
  match Multi_scheme.prepare ~options ws [ figq; two_away ] with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let r = Multi_scheme.report scheme in
      check int "two queries" 2 r.Multi_scheme.queries;
      check bool "capacity >= 1" true (Multi_scheme.capacity scheme >= 1);
      let cap = min 6 (Multi_scheme.capacity scheme) in
      let message = Wm_util.Codec.random (Wm_util.Prng.create 2) cap in
      let marked = Multi_scheme.mark scheme message ws.Weighted.weights in
      (* Both queries' distortions within the budget, simultaneously. *)
      List.iter
        (fun (qi, d) ->
          check bool
            (Printf.sprintf "query %d within budget" qi)
            true
            (d <= r.Multi_scheme.budget))
        (Multi_scheme.distortion scheme ws.Weighted.weights marked);
      let decoded =
        Multi_scheme.detect_weights scheme ~original:ws.Weighted.weights
          ~suspect:marked ~length:cap
      in
      check bool "roundtrip" true (Wm_util.Bitvec.equal decoded message)

let test_multi_rejects_mixed_arity () =
  let ws = Paper_examples.figure1 in
  let pairq =
    Query.make ~params:[ "u" ] ~results:[ "v"; "w" ]
      Fo.(atom "E" [ "u"; "v" ] &&& atom "E" [ "u"; "w" ])
  in
  match Multi_scheme.prepare ws [ figq; pairq ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mixed result arity accepted"

let prop_multi_simultaneous_budget =
  QCheck.Test.make ~count:10 ~name:"multi-scheme bounds every query at once"
    QCheck.(int_range 1 200)
    (fun seed ->
      let ws =
        Random_struct.regular_rings (Wm_util.Prng.create seed)
          ~n:(24 + (seed mod 3 * 12))
      in
      let options = { Local_scheme.default_options with rho = Some 2; seed } in
      match Multi_scheme.prepare ~options ws [ figq; two_away ] with
      | Error _ -> QCheck.assume_fail ()
      | Ok scheme ->
          let cap = Multi_scheme.capacity scheme in
          let message = Wm_util.Codec.random (Wm_util.Prng.create (seed + 1)) cap in
          let marked = Multi_scheme.mark scheme message ws.Weighted.weights in
          List.for_all
            (fun (_, d) -> d <= (Multi_scheme.report scheme).Multi_scheme.budget)
            (Multi_scheme.distortion scheme ws.Weighted.weights marked)
          && Wm_util.Bitvec.equal message
               (Multi_scheme.detect_weights scheme ~original:ws.Weighted.weights
                  ~suspect:marked ~length:cap))

(* --- k-party collusion --------------------------------------------------- *)

let test_average_many_two_matches_average () =
  let w1 = Weighted.of_list 1 [ (Tuple.singleton 0, 10); (Tuple.singleton 1, 21) ] in
  let w2 = Weighted.of_list 1 [ (Tuple.singleton 0, 12); (Tuple.singleton 1, 22) ] in
  let a = Incremental.average w1 w2 in
  let b = Incremental.average_many [ w1; w2 ] in
  check int "elt 0" (Weighted.get_elt a 0) (Weighted.get_elt b 0);
  check int "elt 1" (Weighted.get_elt a 1) (Weighted.get_elt b 1)

let test_collusion_grows_with_k () =
  let ws, scheme = scheme_of 7 80 in
  let cap = min 10 (Local_scheme.capacity scheme) in
  let g = Wm_util.Prng.create 1 in
  let surviving k =
    let copies =
      List.init k (fun _ ->
          Local_scheme.mark scheme (Wm_util.Codec.random g cap) ws.Weighted.weights)
    in
    let avg = Incremental.average_many copies in
    let v =
      Detector.read_weights (Local_scheme.pairs scheme)
        ~original:ws.Weighted.weights ~suspect:avg ~length:cap
    in
    v.Detector.strong
  in
  (* One copy: everything intact.  More colluders: strictly less signal on
     average (random messages disagree on ~half the bits). *)
  check int "k=1 intact" cap (surviving 1);
  check bool "k=4 degrades" true (surviving 4 < cap)

(* --- textio --------------------------------------------------------------- *)

let test_textio_roundtrip_travel () =
  let ws = Paper_examples.travel in
  let ws2 = Wm_relational.Textio.of_string (Wm_relational.Textio.to_string ws) in
  check bool "structures equal" true
    (Structure.equal ws.Weighted.graph ws2.Weighted.graph);
  check bool "weights equal" true
    (Weighted.equal ws.Weighted.weights ws2.Weighted.weights);
  check string "names kept" "India discovery" (Structure.name_of ws2.Weighted.graph 0)

let test_textio_errors () =
  List.iter
    (fun s ->
      match Wm_relational.Textio.of_string s with
      | exception Wm_relational.Textio.Format_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ s))
    [
      "";
      "size 3";
      "schema E/2";
      "schema E/2\nsize 2\nrel F 0 1";
      "schema E/2\nsize 2\nrel E 0 5";
      "schema E/2\nsize 2\nbogus directive";
      "schema E/x\nsize 2";
    ]

let prop_textio_roundtrip =
  QCheck.Test.make ~count:25 ~name:"textio roundtrips random instances"
    QCheck.(int_range 1 500)
    (fun seed ->
      let g = Wm_util.Prng.create seed in
      let ws =
        Random_struct.travel g ~travels:(2 + Wm_util.Prng.int g 10)
          ~transports:(3 + Wm_util.Prng.int g 20)
      in
      let ws2 = Wm_relational.Textio.of_string (Wm_relational.Textio.to_string ws) in
      Structure.equal ws.Weighted.graph ws2.Weighted.graph
      && Weighted.equal ws.Weighted.weights ws2.Weighted.weights)

let suite =
  [
    ("aggregates on figure 1", `Quick, test_aggregates_basic);
    ("aggregates under pair marking", `Quick, test_aggregates_pair_marking);
    QCheck_alcotest.to_alcotest prop_aggregate_bounds;
    ("detector: clean copy", `Quick, test_detector_clean_copy);
    ("detector: innocent servers", `Quick, test_detector_unrelated_data);
    ("detector: binomial tail", `Quick, test_binomial_tail);
    ("detector: binomial tail degenerate p", `Quick, test_binomial_tail_degenerate_p);
    ("multi-query roundtrip", `Quick, test_multi_roundtrip);
    ("multi-query arity guard", `Quick, test_multi_rejects_mixed_arity);
    QCheck_alcotest.to_alcotest prop_multi_simultaneous_budget;
    ("average_many = average for k=2", `Quick, test_average_many_two_matches_average);
    ("collusion grows with k", `Quick, test_collusion_grows_with_k);
    ("textio roundtrip (example 1)", `Quick, test_textio_roundtrip_travel);
    ("textio rejects junk", `Quick, test_textio_errors);
    QCheck_alcotest.to_alcotest prop_textio_roundtrip;
  ]
