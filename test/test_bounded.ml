(* The bounded-width fast path (DESIGN.md 5.14): decomposition-driven
   canonical codes must be a pure speedup — bit-identical to the generic
   path and to the frozen Neighborhood_ref pipeline for any structure,
   width bound, job count and cache setting, spheres straddling the
   bound included. *)

open Wm_util

let check = Alcotest.check
let bool = Alcotest.bool

let equal_index (a : Neighborhood.index) (b : Neighborhood.index) =
  a.rho = b.rho && a.arity = b.arity
  && Tuple.Map.equal Int.equal a.types b.types
  && a.representatives = b.representatives

let sparse_graph g =
  let n = 6 + Prng.int g 20 in
  let edges = n + Prng.int g (n / 2 + 1) in
  (Wm_workload.Random_struct.graph g ~n ~max_degree:3 ~edges).Weighted.graph

(* A uniformly random labeled tree as a graph structure: treewidth 1,
   the ideal bounded-path workload. *)
let tree_graph g =
  let n = 4 + Prng.int g 20 in
  let s = Structure.create Schema.graph n in
  let edges = List.init (n - 1) (fun i -> Tuple.pair (Prng.int g (i + 1)) (i + 1)) in
  Structure.set_relation s "E" (Relation.of_list 2 edges)

let grid_graph w h = (Wm_workload.Grid.structure ~w ~h).Weighted.graph

(* A 5-clique (sphere width 4) bridged to a path (sphere width 1): with
   bounds 1..3 the clique-side spheres fall back while the path-side
   spheres take the code path — the straddling case. *)
let straddle_graph () =
  let n = 12 in
  let s = Structure.create Schema.graph n in
  let clique = ref [] in
  for a = 0 to 4 do
    for b = a + 1 to 4 do
      clique := Tuple.pair a b :: !clique
    done
  done;
  let path = List.init (n - 5) (fun i -> Tuple.pair (4 + i) (min (n - 1) (5 + i))) in
  Structure.set_relation s "E" (Relation.of_list 2 (!clique @ path))

(* --- bounded == generic == reference, across workloads ---------------- *)

let prop_bounded_matches ~name ~count mk =
  QCheck.Test.make ~count ~name
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create (0xB0D + seed) in
      let base = mk g in
      let rho = Prng.int g 3 in
      let arity = 1 + Prng.int g 2 in
      let width = 1 + Prng.int g 5 in
      let jobs = 1 + Prng.int g 2 in
      let tuples =
        Neighborhood.all_tuples base ~arity
      in
      let generic = Neighborhood.index ~jobs ~width_bound:0 base ~rho tuples in
      let bounded = Neighborhood.index_bounded ~jobs ~width base ~rho tuples in
      let reference = Neighborhood_ref.index base ~rho tuples in
      equal_index bounded generic && equal_index bounded reference)

let prop_sparse =
  prop_bounded_matches ~count:30
    ~name:"index_bounded == index == ref (random sparse)" sparse_graph

let prop_tree =
  prop_bounded_matches ~count:30
    ~name:"index_bounded == index == ref (random tree)" tree_graph

let prop_grid =
  prop_bounded_matches ~count:10 ~name:"index_bounded == index == ref (grid)"
    (fun g -> grid_graph (2 + Prng.int g 4) (2 + Prng.int g 4))

let prop_cache_off =
  QCheck.Test.make ~count:20 ~name:"bounded path, sphere cache on/off"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create (0x0FF + seed) in
      let base = sparse_graph g in
      let rho = Prng.int g 3 in
      equal_index
        (Neighborhood.index_universe ~sphere_cache:false ~width_bound:3 base
           ~rho ~arity:2)
        (Neighborhood.index_universe ~width_bound:3 base ~rho ~arity:2))

(* --- the width-fallback boundary -------------------------------------- *)

let counter_of snap name =
  match List.assoc_opt name snap.Wm_obs.Obs.counters with
  | Some v -> v
  | None -> 0

let with_stats f =
  let was = Wm_obs.Obs.enabled () in
  Wm_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Wm_obs.Obs.set_enabled was) f

let test_straddle () =
  with_stats @@ fun () ->
  let base = straddle_graph () in
  List.iter
    (fun width ->
      let before = Wm_obs.Obs.snapshot () in
      let bounded = Neighborhood.index_bounded ~width base ~rho:1
          (Neighborhood.all_tuples base ~arity:1) in
      let d = Wm_obs.Obs.diff ~since:before (Wm_obs.Obs.snapshot ()) in
      let generic = Neighborhood.index ~width_bound:0 base ~rho:1
          (Neighborhood.all_tuples base ~arity:1) in
      check bool
        (Printf.sprintf "straddle width %d identical" width)
        true
        (equal_index bounded generic);
      check bool
        (Printf.sprintf "width %d: clique spheres fall back" width)
        true
        (counter_of d "nbh.bw.width_fallbacks" > 0);
      check bool
        (Printf.sprintf "width %d: path spheres bypass iso" width)
        true
        (counter_of d "nbh.bw.iso_bypassed" > 0))
    [ 1; 2; 3 ]

let test_counters () =
  with_stats @@ fun () ->
  let base = grid_graph 6 6 in
  let before = Wm_obs.Obs.snapshot () in
  ignore (Neighborhood.index_universe ~width_bound:8 base ~rho:1 ~arity:2);
  let d = Wm_obs.Obs.diff ~since:before (Wm_obs.Obs.snapshot ()) in
  check bool "decompositions built" true
    (counter_of d "nbh.bw.decompositions" > 0);
  (* arity 2: many tuples share a sphere set, so the per-sphere
     decomposition cache must be hit *)
  check bool "decomposition cache hit" true
    (counter_of d "nbh.bw.decomp_cache_hits" > 0);
  check bool "groups formed" true (counter_of d "nbh.bw.groups" > 0);
  check bool "iso bypassed" true (counter_of d "nbh.bw.iso_bypassed" > 0)

(* --- reindex over edit scripts under the bound ------------------------ *)

let random_script g base steps =
  let cur = ref base in
  let script = ref [] in
  for _ = 1 to steps do
    let size = Structure.size !cur in
    let edit =
      match Prng.int g 5 with
      | 0 | 1 ->
          Structure.Insert_tuple
            ("E", Tuple.pair (Prng.int g size) (Prng.int g size))
      | 2 -> (
          match Relation.to_list (Structure.relation !cur "E") with
          | [] ->
              Structure.Insert_tuple
                ("E", Tuple.pair (Prng.int g size) (Prng.int g size))
          | ts ->
              Structure.Delete_tuple
                ("E", List.nth ts (Prng.int g (List.length ts))))
      | 3 -> Structure.Add_element None
      | _ ->
          if size > 2 then Structure.Remove_element (size - 1)
          else Structure.Add_element None
    in
    let cur', _ = Structure.apply_edit !cur edit in
    cur := cur';
    script := edit :: !script
  done;
  List.rev !script

let prop_reindex_bounded =
  QCheck.Test.make ~count:30 ~name:"bounded reindex == reference from scratch"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create (0x2E1E + seed) in
      let base = sparse_graph g in
      let rho = Prng.int g 3 in
      let arity = 1 + Prng.int g 2 in
      let width = 1 + Prng.int g 4 in
      let jobs = 1 + Prng.int g 2 in
      let prev =
        Neighborhood.index_universe ~jobs ~width_bound:width base ~rho ~arity
      in
      let script = random_script g base (1 + Prng.int g 5) in
      let edited, dirty = Structure.apply_edits base script in
      let inc =
        Neighborhood.reindex ~jobs ~threshold:2.0 ~width_bound:width ~old:base
          edited ~prev ~dirty
      in
      equal_index inc (Neighborhood_ref.index_universe edited ~rho ~arity))

(* --- the dispatcher: set_width_bound / WMARK_WIDTH_BOUND -------------- *)

let test_dispatcher () =
  let base = straddle_graph () in
  let explicit = Neighborhood.index_universe ~width_bound:2 base ~rho:1 ~arity:1 in
  Fun.protect ~finally:(fun () -> Neighborhood.set_width_bound None)
  @@ fun () ->
  Neighborhood.set_width_bound (Some 2);
  check bool "set_width_bound applies to bare calls" true
    (Neighborhood.width_bound () = Some 2
    && equal_index explicit (Neighborhood.index_universe base ~rho:1 ~arity:1));
  Neighborhood.set_width_bound (Some 0);
  check bool "Some 0 forces the generic path" true
    (Neighborhood.width_bound () = None);
  Neighborhood.set_width_bound None;
  check bool "None defers to the environment" true
    (Neighborhood.width_bound ()
    = (match Sys.getenv_opt "WMARK_WIDTH_BOUND" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some k when k >= 1 -> Some k
          | _ -> None)
      | None -> None));
  check bool "negative bound rejected" true
    (try
       Neighborhood.set_width_bound (Some (-1));
       false
     with Invalid_argument _ -> true);
  check bool "index_bounded rejects width 0" true
    (try
       ignore (Neighborhood.index_bounded ~width:0 base ~rho:1 []);
       false
     with Invalid_argument _ -> true)

let test_max_sphere_width () =
  (* path: rho-1 spheres are sub-paths, width 1; the straddle graph's
     clique spheres reach width 4 *)
  let tree = tree_graph (Prng.create 7) in
  check bool "tree spheres have width <= 1" true
    (Neighborhood.max_sphere_width tree ~rho:1 <= 1);
  let st = straddle_graph () in
  check Alcotest.int "straddle max sphere width" 4
    (Neighborhood.max_sphere_width st ~rho:1);
  (* the survey names the exact threshold that ends fallbacks *)
  with_stats @@ fun () ->
  let w = Neighborhood.max_sphere_width st ~rho:1 in
  let before = Wm_obs.Obs.snapshot () in
  ignore
    (Neighborhood.index_bounded ~width:w st ~rho:1
       (Neighborhood.all_tuples st ~arity:1));
  let d = Wm_obs.Obs.diff ~since:before (Wm_obs.Obs.snapshot ()) in
  check Alcotest.int "no fallbacks at the surveyed width" 0
    (counter_of d "nbh.bw.width_fallbacks")

let suite =
  [
    QCheck_alcotest.to_alcotest prop_sparse;
    QCheck_alcotest.to_alcotest prop_tree;
    QCheck_alcotest.to_alcotest prop_grid;
    QCheck_alcotest.to_alcotest prop_cache_off;
    QCheck_alcotest.to_alcotest prop_reindex_bounded;
    Alcotest.test_case "width-fallback boundary (straddling)" `Quick
      test_straddle;
    Alcotest.test_case "bw counters" `Quick test_counters;
    Alcotest.test_case "dispatcher precedence" `Quick test_dispatcher;
    Alcotest.test_case "max_sphere_width survey" `Quick test_max_sphere_width;
  ]
