(* Entry point: one alcotest section per library. *)

let () =
  Alcotest.run "qpwm"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("relational", Test_relational.suite);
      ("flatcore", Test_flatcore.suite);
      ("incremental", Test_incremental.suite);
      ("perf", Test_perf.suite);
      ("bounded", Test_bounded.suite);
      ("logic", Test_logic.suite);
      ("trees", Test_trees.suite);
      ("xml", Test_xml.suite);
      ("vc", Test_vc.suite);
      ("watermark", Test_watermark.suite);
      ("fingerprint", Test_fingerprint.suite);
      ("survivable", Test_survivable.suite);
      ("recovery", Test_recovery.suite);
      ("fuzz", Test_fuzz.suite);
      ("serve", Test_serve.suite);
      ("cliquewidth", Test_cliquewidth.suite);
      ("extensions", Test_extensions.suite);
      ("integration", Test_integration.suite);
      ("edges", Test_edges.suite);
      ("cli", Test_cli.suite);
      ("coverage", Test_coverage.suite);
    ]
