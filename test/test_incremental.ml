(* The incremental-reindex contract: for ANY structure, ANY edit script and
   ANY job count, Neighborhood.reindex over the dirty set the edits report
   is bit-identical — type ids, representatives, ntp — to a from-scratch
   index_universe of the edited structure.  CI runs this suite under the
   default jobs and again with WMARK_JOBS=2, which covers the parallel
   phases of both paths. *)

open Wm_util

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let equal_index (a : Neighborhood.index) (b : Neighborhood.index) =
  a.rho = b.rho && a.arity = b.arity
  && Tuple.Map.equal Int.equal a.types b.types
  && a.representatives = b.representatives

(* --- random structures and edit scripts ------------------------------ *)

let random_graph g =
  let n = 4 + Prng.int g 10 in
  let edges = 1 + Prng.int g (2 * n) in
  (Wm_workload.Random_struct.graph g ~n ~max_degree:4 ~edges).Weighted.graph

(* Generates a well-formed script by replaying each step on a shadow copy,
   so tuple inserts stay in range and removals hit the last element. *)
let random_script g base steps =
  let cur = ref base in
  let script = ref [] in
  for _ = 1 to steps do
    let size = Structure.size !cur in
    let edit =
      match Prng.int g 5 with
      | 0 | 1 ->
          Structure.Insert_tuple
            ("E", Tuple.pair (Prng.int g size) (Prng.int g size))
      | 2 -> (
          match Relation.to_list (Structure.relation !cur "E") with
          | [] ->
              Structure.Insert_tuple
                ("E", Tuple.pair (Prng.int g size) (Prng.int g size))
          | ts -> Structure.Delete_tuple ("E", List.nth ts (Prng.int g (List.length ts))))
      | 3 -> Structure.Add_element None
      | _ ->
          if size > 2 then Structure.Remove_element (size - 1)
          else Structure.Add_element None
    in
    let cur', _ = Structure.apply_edit !cur edit in
    cur := cur';
    script := edit :: !script
  done;
  List.rev !script

let run_case ~threshold seed =
  let g = Prng.create (0x1DC0 + seed) in
  let base = random_graph g in
  let rho = Prng.int g 3 in
  let arity = 1 + Prng.int g 2 in
  let prev = Neighborhood.index_universe base ~rho ~arity in
  let script = random_script g base (1 + Prng.int g 5) in
  let edited, dirty = Structure.apply_edits base script in
  let inc = Neighborhood.reindex ?threshold ~old:base edited ~prev ~dirty in
  let full = Neighborhood.index_universe edited ~rho ~arity in
  equal_index inc full

let prop_reindex_incremental =
  (* threshold 2.0 never falls back: this exercises the anchor-and-splice
     path even when the whole universe is affected *)
  QCheck.Test.make ~count:50
    ~name:"reindex (incremental path) == index_universe"
    QCheck.(int_range 0 100_000)
    (run_case ~threshold:(Some 2.0))

let prop_reindex_default =
  QCheck.Test.make ~count:50
    ~name:"reindex (default threshold) == index_universe"
    QCheck.(int_range 0 100_000)
    (run_case ~threshold:None)

let prop_reindex_jobs1 =
  QCheck.Test.make ~count:25 ~name:"reindex is job-count independent"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create (0x0B5 + seed) in
      let base = random_graph g in
      let rho = 1 and arity = 2 in
      let prev = Neighborhood.index_universe base ~rho ~arity in
      let script = random_script g base 3 in
      let edited, dirty = Structure.apply_edits base script in
      let a =
        Neighborhood.reindex ~jobs:1 ~threshold:2.0 ~old:base edited ~prev
          ~dirty
      in
      let b =
        Neighborhood.reindex ~threshold:2.0 ~old:base edited ~prev ~dirty
      in
      equal_index a b)

(* --- deterministic corners ------------------------------------------- *)

let pair_struct () =
  let s = Structure.create Schema.graph 6 in
  Structure.add_pairs s "E" [ (0, 1); (1, 2); (3, 4) ]

let test_noop_edits () =
  let g0 = pair_struct () in
  let prev = Neighborhood.index_universe g0 ~rho:1 ~arity:2 in
  let g1, dirty = Structure.apply_edits g0 [] in
  check (Alcotest.list int) "no dirt" [] dirty;
  let inc = Neighborhood.reindex ~old:g0 g1 ~prev ~dirty in
  check bool "identical" true
    (equal_index inc (Neighborhood.index_universe g1 ~rho:1 ~arity:2))

let test_single_edits () =
  let g0 = pair_struct () in
  List.iter
    (fun (label, edit) ->
      let prev = Neighborhood.index_universe g0 ~rho:1 ~arity:2 in
      let g1, dirty = Structure.apply_edit g0 edit in
      let inc = Neighborhood.reindex ~threshold:2.0 ~old:g0 g1 ~prev ~dirty in
      let full = Neighborhood.index_universe g1 ~rho:1 ~arity:2 in
      check bool label true (equal_index inc full))
    [
      ("insert", Structure.Insert_tuple ("E", Tuple.pair 2 3));
      ("delete", Structure.Delete_tuple ("E", Tuple.pair 0 1));
      ("delete absent", Structure.Delete_tuple ("E", Tuple.pair 5 5));
      ("add element", Structure.Add_element None);
      ("add named", Structure.Add_element (Some "fresh"));
      ("remove last", Structure.Remove_element 5);
    ]

let test_remove_isolated () =
  (* The removed element is isolated: the dirty set is empty, yet every
     tuple mentioning it must leave the index. *)
  let g0 = pair_struct () in
  let g1, dirty = Structure.apply_edit g0 (Structure.Remove_element 5) in
  check (Alcotest.list int) "no dirt" [] dirty;
  let prev = Neighborhood.index_universe g0 ~rho:1 ~arity:2 in
  let inc = Neighborhood.reindex ~threshold:2.0 ~old:g0 g1 ~prev ~dirty in
  check bool "identical" true
    (equal_index inc (Neighborhood.index_universe g1 ~rho:1 ~arity:2));
  check int "universe shrank" 25 (Tuple.Map.cardinal inc.Neighborhood.types)

let test_remove_nonlast_rejected () =
  let g0 = pair_struct () in
  Alcotest.check_raises "non-last removal"
    (Invalid_argument
       "Structure.apply_edit: can only remove the last element (2, universe \
        has 6)") (fun () ->
      ignore (Structure.apply_edit g0 (Structure.Remove_element 2)))

let test_gaifman_refresh () =
  let g0 = pair_struct () in
  let gf0 = Gaifman.of_structure g0 in
  let g1, dirty =
    Structure.apply_edits g0
      [
        Structure.Insert_tuple ("E", Tuple.pair 2 3);
        Structure.Delete_tuple ("E", Tuple.pair 0 1);
        Structure.Add_element None;
      ]
  in
  let fresh = Gaifman.of_structure g1 in
  let inc = Gaifman.refresh g1 ~prev:gf0 ~dirty in
  check int "size" (Gaifman.size fresh) (Gaifman.size inc);
  for a = 0 to Gaifman.size fresh - 1 do
    check (Alcotest.list int)
      (Printf.sprintf "row %d" a)
      (Gaifman.neighbors fresh a) (Gaifman.neighbors inc a)
  done

let test_affected_elements () =
  let g0 = pair_struct () in
  let g1, dirty = Structure.apply_edit g0 (Structure.Insert_tuple ("E", Tuple.pair 2 3)) in
  let old_gf = Gaifman.of_structure g0 in
  let gf = Gaifman.of_structure g1 in
  check (Alcotest.list int) "rho=0 is the dirty set" [ 2; 3 ]
    (Neighborhood.affected_elements ~old_gf ~gf ~rho:0 ~dirty);
  (* rho=1: 2's old neighbor 1, 3's old neighbor 4, plus the new edge *)
  check (Alcotest.list int) "rho=1 reaches both sides" [ 1; 2; 3; 4 ]
    (Neighborhood.affected_elements ~old_gf ~gf ~rho:1 ~dirty)

(* --- the wired layers ------------------------------------------------ *)

let edge_query =
  Query.make ~params:[ "u" ] ~results:[ "v" ] (Fo.atom "E" [ "u"; "v" ])

let test_query_refresh_matches_fresh () =
  for seed = 0 to 7 do
    let g = Prng.create (0x9F5 + seed) in
    let base = random_graph g in
    let qs = Wm_watermark.Query_system.of_relational base edge_query in
    (* exercise both the frozen (precomputed) and the cold path *)
    if seed mod 2 = 0 then Wm_watermark.Query_system.precompute qs;
    let script = random_script g base (1 + Prng.int g 4) in
    let edited, dirty = Structure.apply_edits base script in
    let old_gf = Gaifman.of_structure base in
    let gf = Gaifman.of_structure edited in
    let affected = Neighborhood.affected_elements ~old_gf ~gf ~rho:1 ~dirty in
    let refreshed =
      Wm_watermark.Query_system.refresh_relational qs edited edge_query
        ~affected
    in
    let fresh = Wm_watermark.Query_system.of_relational edited edge_query in
    List.iter
      (fun a ->
        check bool
          (Printf.sprintf "seed %d: result set of param %d" seed a.(0))
          true
          (Tuple.Set.equal
             (Wm_watermark.Query_system.result_set refreshed a)
             (Wm_watermark.Query_system.result_set fresh a)))
      (Wm_watermark.Query_system.params fresh)
  done

(* Remove_element shrinks the universe under the weights; keep these
   scripts growth/churn-only so the weighted structure stays valid. *)
let random_keeping_script g base steps =
  List.map
    (function Structure.Remove_element _ -> Structure.Add_element None | e -> e)
    (random_script g base steps)

let test_local_scheme_update_matches_prepare () =
  let module L = Wm_watermark.Local_scheme in
  for seed = 0 to 5 do
    let g = Prng.create (0x10CA + (seed * 31) + 7) in
    let ws =
      Wm_workload.Random_struct.graph g ~n:(8 + Prng.int g 6) ~max_degree:4
        ~edges:14
    in
    match L.prepare ws edge_query with
    | Error _ -> ()
    | Ok scheme ->
        let script = random_keeping_script g ws.Weighted.graph 3 in
        let edited, dirty = Structure.apply_edits ws.Weighted.graph script in
        let ws' = { ws with Weighted.graph = edited } in
        let incremental = L.update scheme ~old:ws ws' edge_query ~dirty in
        let fresh = L.prepare ws' edge_query in
        (match (incremental, fresh) with
        | Ok u, Ok p ->
            check bool
              (Printf.sprintf "seed %d: same report" seed)
              true
              (L.report u = L.report p);
            check bool
              (Printf.sprintf "seed %d: same pairs" seed)
              true
              (L.pairs u = L.pairs p)
        | Error a, Error b ->
            check Alcotest.string
              (Printf.sprintf "seed %d: same error" seed)
              b a
        | Ok _, Error e ->
            Alcotest.failf "seed %d: update ok but prepare failed: %s" seed e
        | Error e, Ok _ ->
            Alcotest.failf "seed %d: prepare ok but update failed: %s" seed e)
  done

let test_multi_scheme_update_matches_prepare () =
  let module M = Wm_watermark.Multi_scheme in
  let q2 =
    Query.make ~params:[ "u" ] ~results:[ "v" ] (Fo.atom "E" [ "v"; "u" ])
  in
  for seed = 0 to 3 do
    let g = Prng.create (0x3417 + seed) in
    let ws =
      Wm_workload.Random_struct.graph g ~n:(8 + Prng.int g 5) ~max_degree:4
        ~edges:12
    in
    let queries = [ edge_query; q2 ] in
    match M.prepare ws queries with
    | Error _ -> ()
    | Ok scheme ->
        let script = random_keeping_script g ws.Weighted.graph 3 in
        let edited, dirty = Structure.apply_edits ws.Weighted.graph script in
        let ws' = { ws with Weighted.graph = edited } in
        (match (M.update scheme ~old:ws ws' queries ~dirty, M.prepare ws' queries) with
        | Ok u, Ok p ->
            check bool
              (Printf.sprintf "seed %d: same report" seed)
              true
              (M.report u = M.report p);
            check bool
              (Printf.sprintf "seed %d: same pairs" seed)
              true
              (M.pairs u = M.pairs p)
        | Error a, Error b ->
            check Alcotest.string
              (Printf.sprintf "seed %d: same error" seed)
              b a
        | Ok _, Error e ->
            Alcotest.failf "seed %d: update ok but prepare failed: %s" seed e
        | Error e, Ok _ ->
            Alcotest.failf "seed %d: prepare ok but update failed: %s" seed e)
  done

let suite =
  [
    Alcotest.test_case "noop edit script" `Quick test_noop_edits;
    Alcotest.test_case "single edits" `Quick test_single_edits;
    Alcotest.test_case "remove isolated element" `Quick test_remove_isolated;
    Alcotest.test_case "non-last removal rejected" `Quick
      test_remove_nonlast_rejected;
    Alcotest.test_case "gaifman refresh" `Quick test_gaifman_refresh;
    Alcotest.test_case "affected elements" `Quick test_affected_elements;
    QCheck_alcotest.to_alcotest prop_reindex_incremental;
    QCheck_alcotest.to_alcotest prop_reindex_default;
    QCheck_alcotest.to_alcotest prop_reindex_jobs1;
    Alcotest.test_case "query refresh == fresh system" `Quick
      test_query_refresh_matches_fresh;
    Alcotest.test_case "local scheme update == prepare" `Quick
      test_local_scheme_update_matches_prepare;
    Alcotest.test_case "multi scheme update == prepare" `Quick
      test_multi_scheme_update_matches_prepare;
  ]
