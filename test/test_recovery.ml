(* Tests for Wm_watermark.Recovery: Gaifman-local group partitioning,
   keyed certificate audits, tamper localization against edit scripts,
   best-effort repair, the repair-then-detect pipeline, and the capsule
   attacks (forgery is rejected, splicing produces honest false
   repairs). *)

open Wm_watermark
open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let _ = (int, bool, string)

let bits = 4
let times = 5
let message = Codec.of_int ~bits 0b1011

let prepared =
  lazy
    (let ws = Random_struct.travel (Prng.create 19) ~travels:100 ~transports:400 in
     let q = Random_struct.travel_query in
     match Local_scheme.prepare ws q with
     | Error e -> failwith ("test_recovery: " ^ e)
     | Ok scheme ->
         let base = Robust.of_local scheme in
         let marked_w = Robust.mark base ~times message ws.Weighted.weights in
         let marked = { ws with Weighted.weights = marked_w } in
         (ws, scheme, marked, Recovery.protect marked))

(* --- partition sanity ------------------------------------------------- *)

let test_groups_partition () =
  let _, _, marked, cap = Lazy.force prepared in
  let n = Structure.size marked.Weighted.graph in
  let seen = Array.make n 0 in
  Array.iter
    (fun gr ->
      check bool "group bounded" true
        (Array.length gr.Recovery.members
        <= Recovery.default_options.Recovery.group_size);
      Array.iter
        (fun x ->
          seen.(x) <- seen.(x) + 1;
          check int "group_of agrees" gr.Recovery.gid (Recovery.group_of cap x))
        gr.Recovery.members)
    (Recovery.groups cap);
  Array.iteri
    (fun x c -> check int (Printf.sprintf "element %d in one group" x) 1 c)
    seen

(* --- audit ------------------------------------------------------------ *)

let test_audit_identity_intact () =
  let _, _, marked, cap = Lazy.force prepared in
  let a = Recovery.audit cap ~suspect:marked in
  check int "all intact" (Recovery.ngroups cap) a.Recovery.intact;
  check int "no dirty groups" 0 (List.length (Recovery.dirty_groups a));
  check bool "zero suspicion" true (Detector.suspicion a.Recovery.tamper = 0.)

let test_audit_survives_renumbering () =
  let _, _, marked, cap = Lazy.force prepared in
  let shuffled =
    Adversary.apply_structural (Prng.create 7) Adversary.Shuffle_universe marked
  in
  let a = Recovery.audit cap ~suspect:shuffled in
  check int "renumbering is not tampering" (Recovery.ngroups cap)
    a.Recovery.intact

(* Audit must flag exactly the groups of the dirty elements reported by
   Structure.apply_edits — Gaifman-local tamper localization — and be
   bit-identical at jobs 1 and 2. *)
let test_audit_localizes_edits () =
  let _, _, marked, cap = Lazy.force prepared in
  let g = marked.Weighted.graph in
  (* pick two existing tuples to delete and one to inject *)
  let some_tuples =
    Structure.fold_relations
      (fun rel r acc ->
        match Relation.fold (fun t acc -> t :: acc) r [] with
        | t :: t' :: _ -> (rel, t) :: (rel, t') :: acc
        | _ -> acc)
      g []
  in
  let (rel1, t1), (rel2, t2) =
    match some_tuples with
    | a :: b :: _ -> (a, b)
    | _ -> failwith "no tuples to edit"
  in
  let edits =
    [ Structure.Delete_tuple (rel1, t1); Structure.Delete_tuple (rel2, t2) ]
  in
  let g', dirty = Structure.apply_edits g edits in
  let suspect = { marked with Weighted.graph = g' } in
  let expected =
    List.sort_uniq compare (List.map (Recovery.group_of cap) dirty)
  in
  let a1 = Recovery.audit ~jobs:1 cap ~suspect in
  let a2 = Recovery.audit ~jobs:2 cap ~suspect in
  check bool "audit independent of jobs" true
    (a1.Recovery.statuses = a2.Recovery.statuses);
  check bool "dirty groups are exactly the edited ones" true
    (Recovery.dirty_groups a1 = expected);
  check int "edited groups distorted" (List.length expected)
    a1.Recovery.distorted

let test_audit_erased_groups () =
  let _, _, marked, cap = Lazy.force prepared in
  (* keep a 50% sample: dropped groups audit as Erased or Distorted *)
  let attacked =
    Adversary.apply_structural (Prng.create 11)
      (Adversary.Subset_sample { keep = 0.5 })
      marked
  in
  let a = Recovery.audit cap ~suspect:attacked in
  check bool "some groups fully erased" true (a.Recovery.erased > 0);
  check bool "suspicion grew" true (Detector.suspicion a.Recovery.tamper > 0.);
  check int "statuses cover all groups" (Recovery.ngroups cap)
    (a.Recovery.intact + a.Recovery.distorted + a.Recovery.erased
    + a.Recovery.blind)

(* --- repair ----------------------------------------------------------- *)

(* qcheck round-trip: distort a bounded random set of weights and tuples,
   then repair must restore the marked copy group-exactly (every group
   audits Intact against the capsule) — weight-only and tuple-only damage
   leaves every certificate host alive, so the redundancy budget always
   suffices. *)
let prop_repair_roundtrip =
  QCheck.Test.make ~count:20 ~name:"repair (distort s) == s, group-exact"
    QCheck.(pair (int_range 0 1000) (int_range 1 40))
    (fun (seed, damage) ->
      let _, _, marked, cap = Lazy.force prepared in
      let g = Prng.create (0xD15 + seed) in
      (* flip [damage] random carried weights *)
      let support = Weighted.support marked.Weighted.weights in
      let support = Array.of_list support in
      let w = ref marked.Weighted.weights in
      for _ = 1 to damage do
        let t = Prng.choose g support in
        w := Weighted.add_delta !w t (Prng.pm_one g * (1 + Prng.int g 3))
      done;
      (* and drop a few relation tuples *)
      let graph = ref marked.Weighted.graph in
      Structure.fold_relations
        (fun rel r () ->
          Relation.iter
            (fun t ->
              if Prng.bernoulli g 0.02 then
                graph :=
                  fst
                    (Structure.apply_edit !graph
                       (Structure.Delete_tuple (rel, t))))
            r)
        !graph ();
      let suspect = Weighted.make !graph !w in
      let repaired, report = Recovery.repair cap ~suspect in
      let verdict = Recovery.audit cap ~suspect:repaired in
      verdict.Recovery.intact = Recovery.ngroups cap
      && report.Recovery.unrepairable = 0
      && Weighted.equal repaired.Weighted.weights marked.Weighted.weights)

let test_repair_resurrects_elements () =
  let _, _, marked, cap = Lazy.force prepared in
  let attacked =
    Adversary.apply_structural (Prng.create 13)
      (Adversary.Delete_tuples { fraction = 0.15 })
      marked
  in
  check bool "elements were deleted" true
    (Structure.size attacked.Weighted.graph
    < Structure.size marked.Weighted.graph);
  let repaired, report = Recovery.repair cap ~suspect:attacked in
  check bool "elements restored" true (report.Recovery.restored_elements > 0);
  check bool "weights restored" true (report.Recovery.restored_weights > 0);
  check bool "confidence above audit floor" true
    (report.Recovery.confidence
    >= float_of_int report.Recovery.findings.Recovery.intact
       /. float_of_int (Recovery.ngroups cap));
  (* everything repairable here: hosts are spread, deletion is light *)
  let verdict = Recovery.audit cap ~suspect:repaired in
  check bool "most groups intact after repair" true
    (verdict.Recovery.intact > Recovery.ngroups cap * 9 / 10)

let test_repair_deterministic_across_jobs () =
  let _, _, marked, cap = Lazy.force prepared in
  let attacked =
    Adversary.apply_structural (Prng.create 29)
      (Adversary.Delete_tuples { fraction = 0.2 })
      marked
  in
  let r1, rep1 = Recovery.repair ~jobs:1 cap ~suspect:attacked in
  let r2, rep2 = Recovery.repair ~jobs:2 cap ~suspect:attacked in
  check string "identical repaired structure"
    (Textio.to_string r1) (Textio.to_string r2);
  check int "identical repaired count" rep1.Recovery.repaired
    rep2.Recovery.repaired

(* --- repair-then-detect ----------------------------------------------- *)

let test_detect_repaired_beats_naive () =
  let ws, scheme, marked, cap = Lazy.force prepared in
  (* heavy bit-flipping: enough corrupted carriers that naive majority
     decoding loses the message *)
  let qs = Local_scheme.query_system scheme in
  let active = Query_system.active qs in
  let attacked_w =
    Adversary.apply (Prng.create 41)
      (Adversary.Random_flips { count = List.length active * 8 / 10; amplitude = 2 })
      ~active marked.Weighted.weights
  in
  let suspect = { marked with Weighted.weights = attacked_w } in
  let naive, _ =
    Survivable.detect_structure scheme ~times ~length:bits ~original:ws ~suspect
  in
  let rv, report, _ =
    Recovery.detect_repaired cap scheme ~times ~length:bits ~original:ws
      ~suspect
  in
  check bool "repair restored the message" true
    (Bitvec.equal message rv.Survivable.message);
  check bool "tamper map attached" true
    (rv.Survivable.carriers.Detector.tamper <> None);
  check bool "repair strictly improves carrier agreement" true
    (Survivable.match_pvalue ~expected:message rv
    <= Survivable.match_pvalue ~expected:message naive);
  check bool "damage was found" true
    (report.Recovery.findings.Recovery.distorted > 0)

(* --- capsule attacks -------------------------------------------------- *)

let test_forged_records_rejected () =
  let _, _, marked, cap = Lazy.force prepared in
  let forged =
    Recovery.forge (Prng.create 43) ~fraction:1.0 ~amplitude:3 cap
  in
  let a = Recovery.audit forged ~suspect:marked in
  check bool "forgeries rejected" true (a.Recovery.forged_rejected > 0);
  (* with every copy forged, no group has an authentic certificate *)
  check int "all groups blind" (Recovery.ngroups cap) a.Recovery.blind;
  (* blind groups are never 'repaired' from forged data *)
  let repaired, report = Recovery.repair forged ~suspect:marked in
  check int "nothing repaired" 0 report.Recovery.repaired;
  check bool "weights untouched" true
    (Weighted.equal repaired.Weighted.weights marked.Weighted.weights)

let test_splice_causes_false_repairs () =
  let ws, _, marked, cap = Lazy.force prepared in
  (* a second copy of the same structure marked with the complement *)
  let other_message = Codec.of_int ~bits 0b0100 in
  let q = Random_struct.travel_query in
  let other =
    match Local_scheme.prepare ws q with
    | Error e -> failwith e
    | Ok scheme ->
        let base = Robust.of_local scheme in
        {
          ws with
          Weighted.weights =
            Robust.mark base ~times other_message ws.Weighted.weights;
        }
  in
  let other_cap = Recovery.protect other in
  let spliced =
    Recovery.splice (Prng.create 47) ~fraction:1.0 cap ~other:other_cap
  in
  (* the spliced records are authentic (they verify) but describe the
     OTHER copy: the pristine marked copy now audits as distorted ... *)
  let a = Recovery.audit spliced ~suspect:marked in
  check bool "mix-and-match looks like tampering" true
    (a.Recovery.distorted > 0);
  check int "no forgeries — the records are real" 0 a.Recovery.forged_rejected;
  (* ... and 'repair' faithfully restores the wrong marking. *)
  let repaired, _ = Recovery.repair spliced ~suspect:marked in
  check bool "false repair moved weights toward the other copy" true
    (Weighted.local_distance repaired.Weighted.weights other.Weighted.weights
    < Weighted.local_distance repaired.Weighted.weights marked.Weighted.weights
    || Weighted.equal repaired.Weighted.weights other.Weighted.weights)

(* --- JSON / rendering ------------------------------------------------- *)

let test_reports_render () =
  let _, _, marked, cap = Lazy.force prepared in
  let attacked =
    Adversary.apply_structural (Prng.create 53)
      (Adversary.Subset_sample { keep = 0.7 })
      marked
  in
  let a = Recovery.audit cap ~suspect:attacked in
  let s = Recovery.render_audit cap a in
  check bool "render mentions groups" true
    (String.length s > 0 && String.sub s 0 7 = "groups:");
  let j = Json.to_string (Recovery.audit_json cap a) in
  check bool "audit json has statuses" true
    (String.length j > 0);
  let _, report = Recovery.repair cap ~suspect:attacked in
  let rj = Json.to_string (Recovery.repair_json report) in
  check bool "repair json nonempty" true (String.length rj > 0)

let suite =
  [
    ("groups partition the universe", `Slow, test_groups_partition);
    ("identity audit is all-intact", `Slow, test_audit_identity_intact);
    ("renumbering audits intact", `Slow, test_audit_survives_renumbering);
    ("audit localizes edit scripts", `Slow, test_audit_localizes_edits);
    ("sampling erases groups", `Slow, test_audit_erased_groups);
    QCheck_alcotest.to_alcotest prop_repair_roundtrip;
    ("repair resurrects elements", `Slow, test_repair_resurrects_elements);
    ("repair deterministic across jobs", `Slow, test_repair_deterministic_across_jobs);
    ("repair-then-detect beats naive", `Slow, test_detect_repaired_beats_naive);
    ("forged certificates rejected", `Slow, test_forged_records_rejected);
    ("capsule splicing false-repairs", `Slow, test_splice_causes_false_repairs);
    ("reports render", `Slow, test_reports_render);
  ]
